package raslog

// The pre-streaming codec, kept verbatim as the oracle for the
// byte-compatibility tests in codec_test.go: AppendLine must emit the
// same bytes legacyMarshalLine did, and UnmarshalFields must accept the
// same well-formed lines with the same decoded record. (The new parser
// is deliberately stricter on the RecID field — fmt.Sscanf tolerated
// trailing junk like "1x" — which the fuzz contract permits: rejecting
// more is always allowed, accepting differently is not.)

import (
	"fmt"
	"strings"
)

func legacyEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, fieldSep, `\p`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func legacyUnescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'p':
				b.WriteString(fieldSep)
			case 'n':
				b.WriteString("\n")
			case '\\':
				b.WriteString(`\`)
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func legacyMarshalLine(r Record) string {
	fields := []string{
		fmt.Sprintf("%d", r.RecID),
		legacyEscape(r.MsgID),
		r.Component.String(),
		legacyEscape(r.SubComponent),
		legacyEscape(r.ErrCode),
		r.Severity.String(),
		FormatEventTime(r.EventTime),
		legacyEscape(r.Flags),
		legacyEscape(r.Location),
		legacyEscape(r.Serial),
		legacyEscape(r.Message),
	}
	return strings.Join(fields, fieldSep)
}

func legacyUnmarshalLine(line string) (Record, error) {
	parts := strings.Split(line, fieldSep)
	if len(parts) != numFields {
		return Record{}, fmt.Errorf("%w: %d fields, want %d", ErrBadRecord, len(parts), numFields)
	}
	var r Record
	if _, err := fmt.Sscanf(parts[0], "%d", &r.RecID); err != nil {
		return Record{}, fmt.Errorf("%w: recid %q", ErrBadRecord, parts[0])
	}
	r.MsgID = legacyUnescape(parts[1])
	comp, err := ParseComponent(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	r.Component = comp
	r.SubComponent = legacyUnescape(parts[3])
	r.ErrCode = legacyUnescape(parts[4])
	sev, err := ParseSeverity(parts[5])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	r.Severity = sev
	t, err := ParseEventTime(parts[6])
	if err != nil {
		return Record{}, fmt.Errorf("%w: event time %q", ErrBadRecord, parts[6])
	}
	r.EventTime = t
	r.Flags = legacyUnescape(parts[7])
	r.Location = legacyUnescape(parts[8])
	r.Serial = legacyUnescape(parts[9])
	r.Message = legacyUnescape(parts[10])
	return r, nil
}
