package raslog

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// failingWriter errors after n bytes.
type failingWriter struct {
	budget int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errDiskFull
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failingWriter{budget: 10})
	rec := mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", time.Unix(0, 0).UTC())
	// The bufio layer may absorb several writes before flushing hits the
	// failure; Flush must surface it and subsequent writes must keep
	// failing.
	for i := 0; i < 100; i++ {
		if err := w.Write(rec); err != nil {
			break
		}
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush succeeded on a failing writer")
	}
	if err := w.Write(rec); err == nil {
		t.Fatal("Write succeeded after sticky error")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("second Flush succeeded after sticky error")
	}
}

func TestReaderHandlesLongMessage(t *testing.T) {
	rec := mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", time.Unix(0, 0).UTC())
	rec.Message = strings.Repeat("y", 200_000) // bigger than default scanner buffer
	r := NewReader(strings.NewReader(rec.MarshalLine() + "\n"))
	got, err := r.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Message) != 200_000 {
		t.Errorf("message truncated to %d", len(got.Message))
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReadAllStopsAtFirstBadLine(t *testing.T) {
	good := mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", time.Unix(0, 0).UTC()).MarshalLine()
	in := good + "\n" + "corrupted|line\n" + good + "\n"
	recs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err == nil {
		t.Fatal("corrupted line accepted")
	}
	if len(recs) != 1 {
		t.Errorf("recovered %d records before the error, want 1", len(recs))
	}
}

func TestUnmarshalRejectsTruncatedTimestamp(t *testing.T) {
	rec := mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", time.Unix(0, 0).UTC())
	line := rec.MarshalLine()
	// Chop microseconds off the timestamp field.
	broken := strings.Replace(line, ".000000|", ".0000|", 1)
	if broken == line {
		t.Fatal("test setup: timestamp not found")
	}
	if _, err := UnmarshalLine(broken); err == nil {
		t.Error("truncated timestamp accepted")
	}
}
