package raslog

import (
	"bufio"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unsafe"

	"repro/internal/linescan"
)

// unsafeStringData exposes string identity for the intern test; the
// codec itself stays unsafe-free.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// codecCorpus is the shared line corpus for the legacy-compat tests:
// the fuzz seeds plus lines exercising every escape path and field.
func codecCorpus() []string {
	esc := sampleRecord()
	esc.Message = `pipe | in message \ and backslash` + "\nnewline"
	esc.SubComponent = "a|b"
	bare := Record{Severity: SevFatal, Component: CompKernel, EventTime: time.Unix(0, 0).UTC()}
	neg := sampleRecord()
	neg.RecID = -9223372036854775808
	return []string{
		sampleRecord().MarshalLine(),
		esc.MarshalLine(),
		bare.MarshalLine(),
		neg.MarshalLine(),
		"",
		"1|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn", // 10 fields
		"x|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg",
		"1|M|NOPE|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg",
		"1|M|KERNEL|s|c|LOUD|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg",
		"1|M|KERNEL|s|c|FATAL|not-a-time|f|R00-M0|sn|msg",
		"1|M|KERNEL|s|c|FATAL|2008-02-30-15.08.12.285324|f|R00-M0|sn|msg", // normalized date
		"1|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.28532|f|R00-M0|sn|msg",  // short micros
		strings.Repeat("|", 10),
		`1|\p|KERNEL|\\|\n|FATAL|2008-04-14-15.08.12.285324|\x|R00|sn|m`,
		`2|M\|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00|sn|m`, // lone trailing backslash in field
	}
}

func randomRecord(rng *rand.Rand) Record {
	comps := []Component{CompApplication, CompKernel, CompMC, CompMMCS, CompBareMetal, CompCard, CompDiags}
	sevs := []Severity{SevDebug, SevTrace, SevInfo, SevWarning, SevError, SevFatal}
	texts := []string{"", "plain", `back\slash`, "pi|pe", "new\nline", `trail\`, `\p\n\\`, "R23-M0-N08-J09"}
	pick := func() string { return texts[rng.Intn(len(texts))] }
	return Record{
		RecID:        rng.Int63() - rng.Int63(),
		MsgID:        pick(),
		Component:    comps[rng.Intn(len(comps))],
		SubComponent: pick(),
		ErrCode:      pick(),
		Severity:     sevs[rng.Intn(len(sevs))],
		EventTime:    time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)/1000*1000).UTC(),
		Flags:        pick(),
		Location:     pick(),
		Serial:       pick(),
		Message:      pick(),
	}
}

// TestAppendLineMatchesLegacyMarshal is the satellite property test:
// AppendLine output is byte-identical to the strings.Join-based
// MarshalLine it replaced, across corpus lines and random records.
func TestAppendLineMatchesLegacyMarshal(t *testing.T) {
	for _, line := range codecCorpus() {
		r, err := UnmarshalLine(line)
		if err != nil {
			continue
		}
		if got, want := string(r.AppendLine(nil)), legacyMarshalLine(r); got != want {
			t.Errorf("AppendLine(%q):\n got %q\nwant %q", line, got, want)
		}
	}
	f := func(seed int64) bool {
		r := randomRecord(rand.New(rand.NewSource(seed)))
		if seed%5 == 0 {
			r.Severity, r.Component = SevUnknown, CompUnknown // "UNKNOWN" spellings
		}
		return string(r.AppendLine(nil)) == legacyMarshalLine(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalFieldsMatchesLegacy checks parse agreement against the
// old strings.Split parser: identical records on accepted lines,
// matching error text on rejected ones. The one sanctioned divergence
// is RecID strictness (Sscanf tolerated trailing junk).
func TestUnmarshalFieldsMatchesLegacy(t *testing.T) {
	lines := codecCorpus()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		lines = append(lines, legacyMarshalLine(randomRecord(rng)))
	}
	for _, line := range lines {
		want, wantErr := legacyUnmarshalLine(line)
		var got Record
		gotErr := got.UnmarshalFields([]byte(line))
		if wantErr != nil {
			if gotErr == nil {
				t.Errorf("UnmarshalFields(%q) accepted, legacy rejected: %v", line, wantErr)
			} else if gotErr.Error() != wantErr.Error() {
				t.Errorf("UnmarshalFields(%q) error %q, legacy %q", line, gotErr, wantErr)
			}
			continue
		}
		if gotErr != nil {
			t.Errorf("UnmarshalFields(%q): %v, legacy accepted", line, gotErr)
			continue
		}
		if got != want {
			t.Errorf("UnmarshalFields(%q):\n got %+v\nwant %+v", line, got, want)
		}
	}
}

// TestRecIDStrictness pins down the sanctioned divergence: Sscanf
// leniencies are now rejections, plain signed integers still parse.
func TestRecIDStrictness(t *testing.T) {
	tail := "|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00|sn|m"
	for _, id := range []string{"0", "7", "+7", "-7", "9223372036854775807", "-9223372036854775808"} {
		var r Record
		if err := r.UnmarshalFields([]byte(id + tail)); err != nil {
			t.Errorf("recid %q rejected: %v", id, err)
		}
	}
	for _, id := range []string{"", "x", "1x", " 1", "+", "-", "9223372036854775808", "-9223372036854775809", "1.5"} {
		var r Record
		if err := r.UnmarshalFields([]byte(id + tail)); !errors.Is(err, ErrBadRecord) {
			t.Errorf("recid %q: want ErrBadRecord, got %v", id, err)
		}
	}
}

// TestStreamingReaderMatchesReadAll drives the Next/Err iterator
// against the batch API over the same input, including the error case.
func TestStreamingReaderMatchesReadAll(t *testing.T) {
	var b strings.Builder
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		b.WriteString(legacyMarshalLine(randomRecord(rng)))
		b.WriteString("\n")
		if i%13 == 0 {
			b.WriteString("\n") // blank lines are skipped
		}
	}
	in := b.String()

	want, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(in))
	var got []Record
	for r.Next() {
		got = append(got, *r.Record())
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("iterator saw %d records, ReadAll %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	bad := in + "not a record\n" + in
	r1 := NewReader(strings.NewReader(bad))
	seq, seqErr := r1.ReadAll()
	if seqErr == nil {
		t.Fatal("want error on bad line")
	}
	r2 := NewReader(strings.NewReader(bad))
	n := 0
	for r2.Next() {
		n++
	}
	if r2.Err() == nil || r2.Err().Error() != seqErr.Error() {
		t.Fatalf("iterator error %v, ReadAll %v", r2.Err(), seqErr)
	}
	if n != len(seq) {
		t.Fatalf("iterator yielded %d before error, ReadAll %d", n, len(seq))
	}
	if r2.Next() {
		t.Fatal("Next returned true after error")
	}
}

// TestParallelDecodeMatchesSequential is the satellite equivalence
// test: the sharded streaming decode must reproduce ReadAll — records
// and error — for every worker count, run under -race in CI.
func TestParallelDecodeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var b strings.Builder
	for i := 0; i < 1500; i++ {
		b.WriteString(legacyMarshalLine(randomRecord(rng)))
		b.WriteString("\n")
		if i%17 == 0 {
			b.WriteString("\n")
		}
	}
	inputs := map[string]string{
		"clean":       b.String(),
		"empty":       "",
		"no-newline":  strings.TrimSuffix(b.String(), "\n"),
		"mid-error":   b.String()[:len(b.String())/2] + "garbage line\n" + b.String(),
		"first-error": "garbage\n" + b.String(),
	}
	for name, in := range inputs {
		want, wantErr := NewReader(strings.NewReader(in)).ReadAll()
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := ReadAllParallel(strings.NewReader(in), workers)
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Fatalf("%s w=%d: err %v, want %v", name, workers, err, wantErr)
			}
			if len(got) != len(want) {
				t.Fatalf("%s w=%d: %d records, want %d", name, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s w=%d: record %d differs:\n got %+v\nwant %+v", name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestReadMatchingParallelFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	for i := 0; i < 400; i++ {
		b.WriteString(legacyMarshalLine(randomRecord(rng)))
		b.WriteString("\n")
	}
	all, err := NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for _, r := range all {
		if r.Fatal() {
			want = append(want, r)
		}
	}
	got, err := ReadMatchingParallel(strings.NewReader(b.String()), 4, (*Record).Fatal)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("kept %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestReaderTooLongLine is the satellite bugfix regression test: a line
// over the 4 MiB scanner cap must surface as an error naming the line,
// not a silent truncated read — on both the sequential and the parallel
// path.
func TestReaderTooLongLine(t *testing.T) {
	in := sampleRecord().MarshalLine() + "\n" +
		sampleRecord().MarshalLine() + "\n" +
		"3|" + strings.Repeat("x", linescan.MaxLineBytes+1)

	r := NewReader(strings.NewReader(in))
	n := 0
	for r.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d records before the long line, want 2", n)
	}
	if err := r.Err(); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("sequential: want bufio.ErrTooLong, got %v", err)
	} else if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("sequential error should name line 3: %v", err)
	}

	recs, err := ReadAllParallel(strings.NewReader(in), 2)
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("parallel: want bufio.ErrTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("parallel error should name line 3: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("parallel decoded %d records before the long line, want 2", len(recs))
	}
}

// TestReaderInternSharesFieldStrings pins the allocation story the
// benchmarks rely on: repeated field values decode to the same backing
// string.
func TestReaderInternSharesFieldStrings(t *testing.T) {
	line := sampleRecord().MarshalLine()
	in := line + "\n" + line + "\n"
	r := NewReader(strings.NewReader(in))
	if !r.Next() {
		t.Fatal(r.Err())
	}
	first := *r.Record()
	if !r.Next() {
		t.Fatal(r.Err())
	}
	second := *r.Record()
	// Same interned instance, not merely equal bytes.
	if unsafeStringData(first.Message) != unsafeStringData(second.Message) {
		t.Error("Message not interned across records")
	}
	if unsafeStringData(first.ErrCode) != unsafeStringData(second.ErrCode) {
		t.Error("ErrCode not interned across records")
	}
}
