package filter

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/simulate"
	"repro/internal/symtab"
)

// feedAll feeds every record, failing the test on a rejection.
func feedAll(t *testing.T, inc *Incremental, recs []raslog.Record) {
	t.Helper()
	for i := range recs {
		if err := inc.Feed(&recs[i]); err != nil {
			t.Fatalf("Feed(%d): %v", i, err)
		}
	}
}

// checkEquivalent asserts a snapshot of inc equals the batch pipeline
// over the same prefix, including the symtab numbering.
func checkEquivalent(t *testing.T, label string, cfg Config, inc *Incremental, incTab *symtab.Table, prefix []raslog.Record) {
	t.Helper()
	gotEv, gotSt := inc.Snapshot()
	wantTab := symtab.NewTable()
	wantEv, wantSt := Pipeline(cfg, wantTab, prefix)
	if gotSt != wantSt {
		t.Fatalf("%s: stats = %+v, want %+v", label, gotSt, wantSt)
	}
	if len(gotEv) != len(wantEv) {
		t.Fatalf("%s: %d events, want %d", label, len(gotEv), len(wantEv))
	}
	for i := range gotEv {
		if !reflect.DeepEqual(gotEv[i], wantEv[i]) {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, *gotEv[i], *wantEv[i])
		}
	}
	if g, w := incTab.Errcodes.Len(), wantTab.Errcodes.Len(); g != w {
		t.Fatalf("%s: %d errcodes interned, want %d", label, g, w)
	}
	for id := 0; id < incTab.Errcodes.Len(); id++ {
		if g, w := incTab.Errcodes.Name(symtab.ErrcodeID(id)), wantTab.Errcodes.Name(symtab.ErrcodeID(id)); g != w {
			t.Fatalf("%s: errcode %d = %q, want %q", label, id, g, w)
		}
	}
	if g, w := incTab.Locations.Len(), wantTab.Locations.Len(); g != w {
		t.Fatalf("%s: %d locations interned, want %d", label, g, w)
	}
	for id := 0; id < incTab.Locations.Len(); id++ {
		if g, w := incTab.Locations.Name(symtab.LocationID(id)), wantTab.Locations.Name(symtab.LocationID(id)); g != w {
			t.Fatalf("%s: location %d = %q, want %q", label, id, g, w)
		}
	}
}

// TestIncrementalMatchesPipeline pins the streaming cascade's contract:
// at any prefix of a simulated campaign's fatal stream — including
// mid-burst points where temporal and spatial clusters are still open —
// Snapshot equals the batch Pipeline over that prefix, and interleaved
// snapshots never perturb later results.
func TestIncrementalMatchesPipeline(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			camp, err := simulate.Run(simulate.Config{Seed: seed, Days: 8, NoisePerFatal: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			fatal := camp.RAS.Fatal()
			if len(fatal) < 20 {
				t.Fatalf("campaign too quiet: %d fatal records", len(fatal))
			}
			cfg := DefaultConfig()
			tab := symtab.NewTable()
			inc := NewIncremental(cfg, tab)

			// Snapshot at a handful of random interior prefixes plus the
			// awkward ones (first record, last record).
			rng := rand.New(rand.NewSource(seed))
			points := map[int]bool{1: true, len(fatal): true}
			for i := 0; i < 5; i++ {
				points[1+rng.Intn(len(fatal))] = true
			}
			for i := range fatal {
				if err := inc.Feed(&fatal[i]); err != nil {
					t.Fatalf("Feed(%d): %v", i, err)
				}
				if points[i+1] {
					checkEquivalent(t, fmt.Sprintf("prefix %d/%d", i+1, len(fatal)), cfg, inc, tab, fatal[:i+1])
				}
			}
			// A second full snapshot: the first must not have perturbed
			// anything.
			checkEquivalent(t, "final (repeat)", cfg, inc, tab, fatal)
		})
	}
}

// TestIncrementalSyntheticBoundaries drives the cascade with a crafted
// stream that sits on the window edges: same-timestamp records, gaps of
// exactly the temporal and spatial windows (merges: the batch condition
// is <=), one nanosecond past them (splits), and code interleavings
// that exercise supersession and the causality lookback dedup.
func TestIncrementalSyntheticBoundaries(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.CausalityMinSupport = 2
	cfg.CausalityMinConfidence = 0.5
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	codes := []string{"_bgp_err_a", "_bgp_err_b", "_bgp_err_c"}
	locs := []string{"R00-M0", "R00-M1", "R01-M0-N04", "R23-M1-N08-J09"}
	gaps := []time.Duration{
		0, time.Second,
		cfg.TemporalWindow, cfg.TemporalWindow + time.Nanosecond,
		cfg.SpatialWindow, cfg.SpatialWindow + time.Nanosecond,
		cfg.CausalityWindow, cfg.CausalityWindow + time.Nanosecond,
	}
	rng := rand.New(rand.NewSource(42))
	var recs []raslog.Record
	now := base
	for i := 0; i < 400; i++ {
		now = now.Add(gaps[rng.Intn(len(gaps))])
		recs = append(recs, raslog.Record{
			RecID:     int64(i + 1),
			Component: raslog.CompKernel,
			ErrCode:   codes[rng.Intn(len(codes))],
			Severity:  raslog.SevFatal,
			EventTime: now,
			Location:  locs[rng.Intn(len(locs))],
		})
	}

	tab := symtab.NewTable()
	inc := NewIncremental(cfg, tab)
	for i := range recs {
		if err := inc.Feed(&recs[i]); err != nil {
			t.Fatalf("Feed(%d): %v", i, err)
		}
		// Snapshot at every 37th record keeps the shadow path hot.
		if i%37 == 0 {
			checkEquivalent(t, fmt.Sprintf("prefix %d", i+1), cfg, inc, tab, recs[:i+1])
		}
	}
	checkEquivalent(t, "final", cfg, inc, tab, recs)
}

// TestIncrementalRejectsRegression pins the order contract: a record
// behind the watermark is rejected and leaves the state untouched.
func TestIncrementalRejectsRegression(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id int64, at time.Time) raslog.Record {
		return raslog.Record{
			RecID: id, Component: raslog.CompKernel, ErrCode: "_bgp_err_a",
			Severity: raslog.SevFatal, EventTime: at, Location: "R00-M0",
		}
	}
	tab := symtab.NewTable()
	inc := NewIncremental(cfg, tab)
	r1 := mk(1, base)
	r2 := mk(2, base.Add(time.Minute))
	feedAll(t, inc, []raslog.Record{r1, r2})

	evBefore, stBefore := inc.Snapshot()
	old := mk(3, base.Add(30*time.Second))
	if err := inc.Feed(&old); err == nil {
		t.Fatal("Feed accepted a record behind the watermark")
	}
	sameTimeOlderID := mk(1, base.Add(time.Minute))
	if err := inc.Feed(&sameTimeOlderID); err == nil {
		t.Fatal("Feed accepted a same-time record with a smaller RecID")
	}
	evAfter, stAfter := inc.Snapshot()
	if stBefore != stAfter || !reflect.DeepEqual(evBefore, evAfter) {
		t.Fatal("rejected Feed perturbed the cascade state")
	}
	if inc.Input() != 2 {
		t.Fatalf("Input() = %d after rejections, want 2", inc.Input())
	}

	// Equal (time, RecID) duplicates are within the contract: the batch
	// sort is stable, so a re-sent boundary record must be accepted.
	dup := mk(2, base.Add(time.Minute))
	if err := inc.Feed(&dup); err != nil {
		t.Fatalf("Feed rejected an equal-(time,RecID) record: %v", err)
	}
}
