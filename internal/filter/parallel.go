package filter

import (
	"context"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/raslog"
)

// The sharded stage runners exploit that temporal clustering only ever
// merges records sharing a (location, code) key and spatial clustering
// only events sharing a code: partitioning the input by that key gives
// workers fully independent streams. Each emitted event is tagged with
// the input index of its first constituent, and the shards' outputs are
// merged in tag order — exactly the creation order of the sequential
// pass — before the usual stable sort by event time. The result is
// byte-identical to the sequential stage for any worker count.

// tagged pairs an event with the input index of its first constituent.
type tagged struct {
	ev  *Event
	idx int
}

func untag(tg []tagged) []*Event {
	sort.Slice(tg, func(i, j int) bool { return tg[i].idx < tg[j].idx })
	out := make([]*Event, len(tg))
	for i, t := range tg {
		out[i] = t.ev
	}
	return out
}

// shardOf assigns a cluster key to one of w shards, deterministically.
func shardOf(key string, w int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(w))
}

// temporalCluster runs the temporal clustering over the records named
// by idxs (which must be increasing), tagging each cluster with its
// first record index.
func temporalCluster(window time.Duration, recs []raslog.Record, idxs []int) []tagged {
	open := make(map[locKey]*Event)
	lastSeen := make(map[locKey]time.Time)
	out := make([]tagged, 0, len(idxs))
	for _, i := range idxs {
		r := &recs[i]
		k := locKey{loc: r.Location, code: r.ErrCode}
		ev, ok := open[k]
		if ok && r.EventTime.Sub(lastSeen[k]) <= window {
			ev.Last = r.EventTime
			ev.Size++
			lastSeen[k] = r.EventTime
			continue
		}
		ev = &Event{
			Code:      r.ErrCode,
			Component: r.Component,
			First:     r.EventTime,
			Last:      r.EventTime,
			Midplanes: raslog.RecordMidplanes(*r),
			Size:      1,
		}
		open[k] = ev
		lastSeen[k] = r.EventTime
		out = append(out, tagged{ev: ev, idx: i})
	}
	return out
}

// temporalSharded is Temporal on the given worker count.
func temporalSharded(workers int, window time.Duration, recs []raslog.Record) []*Event {
	w := parallel.Workers(workers)
	if w <= 1 || len(recs) < 2*w {
		return Temporal(window, recs)
	}
	shards := make([][]int, w)
	for i := range recs {
		s := shardOf(recs[i].Location+"\x00"+recs[i].ErrCode, w)
		shards[s] = append(shards[s], i)
	}
	parts, _ := parallel.Map(context.Background(), w, w, func(s int) ([]tagged, error) {
		return temporalCluster(window, recs, shards[s]), nil
	})
	var all []tagged
	for _, p := range parts {
		all = append(all, p...)
	}
	out := untag(all)
	sortEvents(out)
	return out
}

// spatialCluster runs the spatial merge over the events named by idxs
// (increasing), tagging each merged cluster with its first event index.
func spatialCluster(window time.Duration, events []*Event, idxs []int) []tagged {
	open := make(map[string]*Event)
	var out []tagged
	for _, i := range idxs {
		ev := events[i]
		cur, ok := open[ev.Code]
		if ok && ev.First.Sub(cur.Last) <= window {
			if ev.Last.After(cur.Last) {
				cur.Last = ev.Last
			}
			cur.Size += ev.Size
			cur.Midplanes = mergeInts(cur.Midplanes, ev.Midplanes)
			continue
		}
		merged := &Event{
			Code:      ev.Code,
			Component: ev.Component,
			First:     ev.First,
			Last:      ev.Last,
			Midplanes: append([]int(nil), ev.Midplanes...),
			Size:      ev.Size,
		}
		open[ev.Code] = merged
		out = append(out, tagged{ev: merged, idx: i})
	}
	return out
}

// spatialSharded is Spatial on the given worker count.
func spatialSharded(workers int, window time.Duration, events []*Event) []*Event {
	w := parallel.Workers(workers)
	if w <= 1 || len(events) < 2*w {
		return Spatial(window, events)
	}
	shards := make([][]int, w)
	for i, ev := range events {
		s := shardOf(ev.Code, w)
		shards[s] = append(shards[s], i)
	}
	parts, _ := parallel.Map(context.Background(), w, w, func(s int) ([]tagged, error) {
		return spatialCluster(window, events, shards[s]), nil
	})
	var all []tagged
	for _, p := range parts {
		all = append(all, p...)
	}
	out := untag(all)
	sortEvents(out)
	return out
}

// pairCount is one shard's partial causality-mining aggregate.
type pairCount struct {
	co    map[codePair]int
	total map[string]int
}

// mineChunk counts leader→follower co-occurrences for events in
// [lo, hi); the lookback may cross the chunk boundary (the events slice
// is shared read-only), so chunking changes nothing about which pairs
// are counted.
func mineChunk(cfg Config, events []*Event, lo, hi int) pairCount {
	pc := pairCount{co: make(map[codePair]int), total: make(map[string]int)}
	for i := lo; i < hi; i++ {
		ev := events[i]
		pc.total[ev.Code]++
		seen := make(map[string]bool)
		for j := i - 1; j >= 0; j-- {
			lead := events[j]
			if ev.First.Sub(lead.First) > cfg.CausalityWindow {
				break
			}
			if lead.Code == ev.Code || seen[lead.Code] {
				continue
			}
			seen[lead.Code] = true
			pc.co[codePair{lead.Code, ev.Code}]++
		}
	}
	return pc
}

// mineCausalitySharded is MineCausality on the given worker count: the
// per-event lookback scan is chunked across workers and the commutative
// integer counts are merged, so the mined rule set is identical.
func mineCausalitySharded(workers int, cfg Config, events []*Event) []Rule {
	w := parallel.Workers(workers)
	if w <= 1 || len(events) < 2*w {
		return MineCausality(cfg, events)
	}
	chunks := parallel.Chunks(w, len(events))
	parts, _ := parallel.Map(context.Background(), w, len(chunks), func(c int) (pairCount, error) {
		return mineChunk(cfg, events, chunks[c][0], chunks[c][1]), nil
	})
	merged := pairCount{co: make(map[codePair]int), total: make(map[string]int)}
	for _, p := range parts {
		for k, n := range p.co {
			merged.co[k] += n
		}
		for k, n := range p.total {
			merged.total[k] += n
		}
	}
	return rulesFromCounts(cfg, merged.co, merged.total)
}
