package filter

import (
	"context"
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/raslog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// The sharded stage runners exploit that temporal clustering only ever
// merges records sharing a (LocationID, ErrcodeID) key and spatial
// clustering only events sharing an ErrcodeID: partitioning the input
// by that key gives workers fully independent streams. Symbols are
// interned before sharding, so the shards work over the already-built
// columnar store. Each emitted event is tagged with the input index of
// its first constituent, and the shards' outputs are merged in tag
// order — exactly the creation order of the sequential pass — before
// the usual stable sort by event time. The result is byte-identical to
// the sequential stage for any worker count.

// tagged pairs an event with the input index of its first constituent.
type tagged struct {
	ev  *Event
	idx int
}

func untag(tg []tagged) []*Event {
	sort.Slice(tg, func(i, j int) bool { return tg[i].idx < tg[j].idx })
	out := make([]*Event, len(tg))
	for i, t := range tg {
		out[i] = t.ev
	}
	return out
}

// shardOfKey assigns a packed integer cluster key to one of w shards,
// deterministically, via a splitmix64-style finalizer so adjacent IDs
// spread evenly.
func shardOfKey(k uint64, w int) int {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return int(k % uint64(w))
}

// temporalCluster runs the temporal clustering over the records named
// by idxs (which must be increasing), tagging each cluster with its
// first record index. The grouping key is the packed
// (LocationID, ErrcodeID) pair from the columnar store; the record
// slice supplies only the wall-clock First/Last timestamps.
func temporalCluster(window time.Duration, cols *store.Events, recs []raslog.Record, idxs []int, perLoc [][]int) []tagged {
	open := make(map[uint64]*Event)
	lastSeen := make(map[uint64]int64)
	out := make([]tagged, 0, len(idxs))
	w := int64(window)
	for _, i := range idxs {
		k := packKey(cols.Loc[i], cols.Code[i])
		t := cols.Time[i]
		ev, ok := open[k]
		if ok && t-lastSeen[k] <= w {
			ev.Last = recs[i].EventTime
			ev.Size++
			lastSeen[k] = t
			continue
		}
		ev = &Event{
			Code:      cols.Code[i],
			Component: raslog.Component(cols.Comp[i]),
			First:     recs[i].EventTime,
			Last:      recs[i].EventTime,
			Midplanes: perLoc[cols.Loc[i]],
			Size:      1,
		}
		open[k] = ev
		lastSeen[k] = t
		out = append(out, tagged{ev: ev, idx: i})
	}
	return out
}

// temporalSharded is the temporal stage on the given worker count, over
// the pre-built columnar store.
func temporalSharded(workers int, window time.Duration, cols *store.Events, recs []raslog.Record, perLoc [][]int) []*Event {
	w := parallel.Workers(workers)
	if w <= 1 || len(recs) < 2*w {
		out := untag(temporalCluster(window, cols, recs, allIndices(len(recs)), perLoc))
		sortEvents(out)
		return out
	}
	shards := make([][]int, w)
	for i := range recs {
		s := shardOfKey(packKey(cols.Loc[i], cols.Code[i]), w)
		shards[s] = append(shards[s], i)
	}
	parts, _ := parallel.Map(context.Background(), w, w, func(s int) ([]tagged, error) {
		return temporalCluster(window, cols, recs, shards[s], perLoc), nil
	})
	var all []tagged
	for _, p := range parts {
		all = append(all, p...)
	}
	out := untag(all)
	sortEvents(out)
	return out
}

// spatialCluster runs the spatial merge over the events named by idxs
// (increasing), tagging each merged cluster with its first event index.
// Open clusters live in a dense per-ErrcodeID slice of size nCodes.
func spatialCluster(window time.Duration, events []*Event, idxs []int, nCodes int) []tagged {
	open := make([]*Event, nCodes)
	out := make([]tagged, 0, len(idxs))
	for _, i := range idxs {
		ev := events[i]
		cur := open[ev.Code]
		if cur != nil && ev.First.Sub(cur.Last) <= window {
			if ev.Last.After(cur.Last) {
				cur.Last = ev.Last
			}
			cur.Size += ev.Size
			cur.Midplanes = mergeInts(cur.Midplanes, ev.Midplanes)
			continue
		}
		merged := &Event{
			Code:      ev.Code,
			Component: ev.Component,
			First:     ev.First,
			Last:      ev.Last,
			Midplanes: append([]int(nil), ev.Midplanes...),
			Size:      ev.Size,
		}
		open[ev.Code] = merged
		out = append(out, tagged{ev: merged, idx: i})
	}
	return out
}

// spatialSharded is the spatial stage on the given worker count.
func spatialSharded(workers int, window time.Duration, events []*Event, nCodes int) []*Event {
	w := parallel.Workers(workers)
	if w <= 1 || len(events) < 2*w {
		out := untag(spatialCluster(window, events, allIndices(len(events)), nCodes))
		sortEvents(out)
		return out
	}
	shards := make([][]int, w)
	for i, ev := range events {
		s := shardOfKey(uint64(uint32(ev.Code)), w)
		shards[s] = append(shards[s], i)
	}
	parts, _ := parallel.Map(context.Background(), w, w, func(s int) ([]tagged, error) {
		return spatialCluster(window, events, shards[s], nCodes), nil
	})
	var all []tagged
	for _, p := range parts {
		all = append(all, p...)
	}
	out := untag(all)
	sortEvents(out)
	return out
}

// pairCount is one shard's partial causality-mining aggregate: packed
// (leader, follower) pair counts plus a dense per-code total column.
type pairCount struct {
	co    map[uint64]int
	total []int
}

// unpackPair splits a packed (leader, follower) ErrcodeID pair.
func unpackPair(p uint64) (lead, follow symtab.ErrcodeID) {
	return symtab.ErrcodeID(p >> 32), symtab.ErrcodeID(uint32(p))
}

// mineChunk counts leader→follower co-occurrences for events in
// [lo, hi); the lookback may cross the chunk boundary (the events slice
// is shared read-only), so chunking changes nothing about which pairs
// are counted. The per-event dedup of leaders uses an epoch-stamped
// dense slice instead of allocating a fresh set per event.
func mineChunk(cfg Config, events []*Event, lo, hi, nCodes int) pairCount {
	pc := pairCount{co: make(map[uint64]int), total: make([]int, nCodes)}
	seen := make([]int, nCodes)
	for i := lo; i < hi; i++ {
		ev := events[i]
		pc.total[ev.Code]++
		first := ev.First.UnixNano()
		stamp := i - lo + 1
		for j := i - 1; j >= 0; j-- {
			lead := events[j]
			if first-lead.First.UnixNano() > int64(cfg.CausalityWindow) {
				break
			}
			if lead.Code == ev.Code || seen[lead.Code] == stamp {
				continue
			}
			seen[lead.Code] = stamp
			pc.co[packPair(lead.Code, ev.Code)]++
		}
	}
	return pc
}

// packPair packs a (leader, follower) ErrcodeID pair into one uint64.
func packPair(lead, follow symtab.ErrcodeID) uint64 {
	return uint64(uint32(lead))<<32 | uint64(uint32(follow))
}

// mineCausalitySharded is MineCausality on the given worker count: the
// per-event lookback scan is chunked across workers and the commutative
// integer counts are merged, so the mined rule set is identical.
func mineCausalitySharded(workers int, cfg Config, events []*Event, nCodes int) []Rule {
	w := parallel.Workers(workers)
	if w <= 1 || len(events) < 2*w {
		pc := mineChunk(cfg, events, 0, len(events), nCodes)
		return rulesFromCounts(cfg, pc.co, pc.total)
	}
	chunks := parallel.Chunks(w, len(events))
	parts, _ := parallel.Map(context.Background(), w, len(chunks), func(c int) (pairCount, error) {
		return mineChunk(cfg, events, chunks[c][0], chunks[c][1], nCodes), nil
	})
	merged := pairCount{co: make(map[uint64]int), total: make([]int, nCodes)}
	for _, p := range parts {
		for k, n := range p.co {
			merged.co[k] += n
		}
		for c, n := range p.total {
			merged.total[c] += n
		}
	}
	return rulesFromCounts(cfg, merged.co, merged.total)
}
