package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/raslog"
	"repro/internal/symtab"
)

// randomFatalStream builds a time-sorted fatal record stream with a few
// codes and locations, including bursts.
func randomFatalStream(seed int64, n int) []raslog.Record {
	rng := rand.New(rand.NewSource(seed))
	codes := []string{"a", "b", "c", "d"}
	var recs []raslog.Record
	at := t0
	for i := 0; i < n; i++ {
		// Alternate tight bursts and long gaps.
		if rng.Intn(4) == 0 {
			at = at.Add(time.Duration(rng.Intn(3600*12)) * time.Second)
		} else {
			at = at.Add(time.Duration(rng.Intn(90)) * time.Second)
		}
		recs = append(recs, raslog.Record{
			RecID: int64(i + 1), MsgID: "M", Component: raslog.CompKernel,
			ErrCode: codes[rng.Intn(len(codes))], Severity: raslog.SevFatal,
			EventTime: at,
			Location:  bgp.MidplaneLocation(rng.Intn(8)).String(),
		})
	}
	return recs
}

func TestTemporalIdempotentOnItsOutputQuick(t *testing.T) {
	// Property: re-running temporal filtering over the cluster heads of
	// its own output changes nothing (one event per surviving head).
	f := func(seed int64) bool {
		recs := randomFatalStream(seed, 200)
		tab := symtab.NewTable()
		first := Temporal(tab, 5*time.Minute, recs)
		// Rebuild records from the event heads.
		heads := make([]raslog.Record, 0, len(first))
		for _, ev := range first {
			heads = append(heads, raslog.Record{
				MsgID: "M", Component: ev.Component, ErrCode: tab.Errcodes.Name(ev.Code),
				Severity: raslog.SevFatal, EventTime: ev.First,
				Location: bgp.MidplaneLocation(ev.Midplanes[0]).String(),
			})
		}
		second := Temporal(symtab.NewTable(), 5*time.Minute, heads)
		// Heads may still merge if two clusters of the same key start
		// within the window of each other — never more events.
		return len(second) <= len(first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineNeverGrowsQuick(t *testing.T) {
	// Property: each stage only removes events.
	f := func(seed int64) bool {
		recs := randomFatalStream(seed, 300)
		cfg := DefaultConfig()
		tOut := Temporal(symtab.NewTable(), cfg.TemporalWindow, recs)
		sOut := Spatial(cfg.SpatialWindow, tOut)
		rules := MineCausality(cfg, sOut)
		cOut := Causality(cfg.CausalityWindow, rules, sOut)
		return len(tOut) <= len(recs) && len(sOut) <= len(tOut) && len(cOut) <= len(sOut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineConservesRecordMassQuick(t *testing.T) {
	// Property: the sizes of temporal-spatial clusters sum to the input
	// record count.
	f := func(seed int64) bool {
		recs := randomFatalStream(seed, 250)
		cfg := DefaultConfig()
		sOut := Spatial(cfg.SpatialWindow, Temporal(symtab.NewTable(), cfg.TemporalWindow, recs))
		total := 0
		for _, ev := range sOut {
			total += ev.Size
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsTimeOrderedAndMidplanesSortedQuick(t *testing.T) {
	f := func(seed int64) bool {
		recs := randomFatalStream(seed, 250)
		evs, _ := Pipeline(DefaultConfig(), symtab.NewTable(), recs)
		for i, ev := range evs {
			if i > 0 && ev.First.Before(evs[i-1].First) {
				return false
			}
			for j := 1; j < len(ev.Midplanes); j++ {
				if ev.Midplanes[j-1] >= ev.Midplanes[j] {
					return false
				}
			}
			if ev.Last.Before(ev.First) || ev.Size < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalZeroWindowKeepsEverything(t *testing.T) {
	recs := randomFatalStream(1, 100)
	// With a zero window, only records at the *same instant* merge.
	evs := Temporal(symtab.NewTable(), 0, recs)
	distinct := map[string]int{}
	for _, r := range recs {
		distinct[r.Location+"|"+r.ErrCode+"|"+r.EventTime.String()]++
	}
	if len(evs) != len(distinct) {
		t.Errorf("zero-window temporal: %d events, want %d", len(evs), len(distinct))
	}
}
