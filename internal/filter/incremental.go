package filter

// This file is the streaming form of the cascade: an Incremental
// accepts FATAL records one at a time (in the (EventTime, RecID) order
// raslog.Store presents) and maintains the temporal and spatial
// clustering plus the causality co-occurrence counts as running state,
// so a long-running service never re-scans the raw record stream. The
// contract, pinned by TestIncrementalMatchesPipeline, is exact
// equivalence: after feeding any prefix of a time-sorted stream,
// Snapshot() returns events and stats deeply equal to
// Pipeline(cfg, tab, prefix) over the same records — including the
// symtab IDs, which are interned per record in Columnarize order.
//
// Why streaming clustering is sound here: records arrive time-sorted,
// so once the watermark (the latest record time seen) has moved more
// than TemporalWindow past a temporal cluster's last record, no future
// record can extend it — the cluster is final and flows to the spatial
// stage in creation order, which is exactly the order the batch stages
// process (the batch shards untag by first-constituent index, and the
// stable time sort preserves that order because First is nondecreasing
// along it). A spatial cluster becomes immutable once the feed
// frontier — the First of the oldest still-queued temporal cluster, or
// the watermark when none is queued — has moved more than SpatialWindow
// past its Last: every event fed later has First at or past the
// frontier and so can never satisfy the merge test. Causality
// co-occurrence counts depend only on the First timestamps of spatial
// clusters in creation order, which never change after creation, so
// they are accumulated at creation time; only the rule derivation and
// the follower-drop pass — linear in the collapsed event count — run
// per Snapshot.
//
// Snapshot is a shadow finalization: still-open clusters are cloned and
// flushed through a copy of the downstream state, so the returned
// events are immutable (frontier-sealed clusters are shared across
// snapshots, the rest are private copies) and the live clustering state
// is untouched — publishing an epoch never blocks or perturbs
// ingestion.

import (
	"fmt"
	"time"

	"repro/internal/raslog"
	"repro/internal/symtab"
)

// tempCluster is one temporal cluster plus the bookkeeping the
// streaming seal test needs.
type tempCluster struct {
	ev       Event
	key      uint64
	lastSeen int64
	// superseded marks clusters that are no longer the open cluster of
	// their key (a later gap started a fresh one); they are final
	// regardless of the watermark.
	superseded bool
}

// spatCluster is one spatial cluster; sealed clusters are immutable
// and shared with every later Snapshot.
type spatCluster struct {
	ev     *Event
	sealed bool
}

// Incremental is the streaming cascade state. It is not safe for
// concurrent use; the serving layer feeds it from a single ingest
// goroutine and publishes only Snapshot results.
type Incremental struct {
	cfg Config
	tab *symtab.Table

	// perLoc caches LocationID -> global midplane indices, grown as new
	// locations intern (the streaming twin of locMidplanes).
	perLoc [][]int

	input     int   // FATAL records fed (Stats.Input)
	watermark int64 // latest record time fed, unix ns
	lastRecID int64 // RecID of the latest record (order validation)
	started   bool

	// Temporal stage: the open cluster per packed (LocationID,
	// ErrcodeID) key, plus every not-yet-flushed cluster in creation
	// order.
	tOpen  map[uint64]*tempCluster
	tQueue []*tempCluster
	tCount int // clusters ever created (Stats.AfterTemporal)

	// Spatial stage: the most recent cluster per ErrcodeID (dense, the
	// streaming twin of spatialCluster's open slice) and all clusters in
	// creation order.
	sLast   []*spatCluster
	spatial []*spatCluster
	// firstUnsealed is a low-water mark: every cluster before it is
	// sealed. Clusters at or past it may or may not still be mutable;
	// Snapshot clones them all, which is cheap because the unsealed
	// suffix is bounded by recent activity, not stream length.
	firstUnsealed int

	// Causality counts over spatial clusters, accumulated at creation
	// (First timestamps are immutable). seen/stamp implement the
	// per-event leader dedup of mineChunk without per-event allocation.
	co    map[uint64]int
	total []int
	seen  []int
	stamp int
}

// NewIncremental returns an empty streaming cascade interning into tab.
func NewIncremental(cfg Config, tab *symtab.Table) *Incremental {
	return &Incremental{
		cfg:   cfg,
		tab:   tab,
		tOpen: make(map[uint64]*tempCluster),
		co:    make(map[uint64]int),
	}
}

// Watermark returns the event time of the latest record fed, in unix
// nanoseconds (0 before the first record).
func (inc *Incremental) Watermark() int64 { return inc.watermark }

// Input returns the number of FATAL records fed so far.
func (inc *Incremental) Input() int { return inc.input }

// Feed ingests one FATAL record. Records must arrive in the
// (EventTime, RecID) order the batch pipeline sorts into; a record
// behind the stream is rejected with an error and leaves the state
// untouched.
func (inc *Incremental) Feed(rec *raslog.Record) error {
	t := rec.EventTime.UnixNano()
	if inc.started && (t < inc.watermark || (t == inc.watermark && rec.RecID < inc.lastRecID)) {
		return fmt.Errorf("filter: record %d at %s behind the stream watermark",
			rec.RecID, rec.EventTime.Format(time.RFC3339Nano))
	}
	inc.started = true
	inc.input++

	// Intern in Columnarize field order (code, then location) so ID
	// numbering matches the batch pipeline over the same stream.
	code := inc.tab.Errcodes.Intern(rec.ErrCode)
	loc := inc.tab.Locations.Intern(rec.Location)
	for int(loc) >= len(inc.perLoc) {
		inc.perLoc = append(inc.perLoc, nil)
	}
	if inc.perLoc[loc] == nil {
		inc.perLoc[loc] = raslog.LocationMidplanes(rec.Location)
	}

	k := packKey(loc, code)
	w := int64(inc.cfg.TemporalWindow)
	if c, ok := inc.tOpen[k]; ok && t-c.lastSeen <= w {
		c.ev.Last = rec.EventTime
		c.ev.Size++
		c.lastSeen = t
	} else {
		if ok {
			c.superseded = true
		}
		nc := &tempCluster{
			ev: Event{
				Code:      code,
				Component: rec.Component,
				First:     rec.EventTime,
				Last:      rec.EventTime,
				Midplanes: inc.perLoc[loc],
				Size:      1,
			},
			key:      k,
			lastSeen: t,
		}
		inc.tOpen[k] = nc
		inc.tQueue = append(inc.tQueue, nc)
		inc.tCount++
	}

	inc.watermark = t
	inc.lastRecID = rec.RecID
	inc.advance()
	return nil
}

// advance flushes what the watermark allows: final temporal clusters
// flow to the spatial stage in creation order, and spatial clusters
// behind the feed frontier seal.
func (inc *Incremental) advance() {
	w := int64(inc.cfg.TemporalWindow)
	for len(inc.tQueue) > 0 {
		c := inc.tQueue[0]
		if !c.superseded && inc.watermark-c.lastSeen <= w {
			break // may still grow; later clusters wait to preserve order
		}
		if !c.superseded {
			delete(inc.tOpen, c.key)
			c.superseded = true
		}
		inc.tQueue[0] = nil
		inc.tQueue = inc.tQueue[1:]
		inc.feedSpatial(&c.ev)
	}

	frontier := inc.frontier()
	sw := int64(inc.cfg.SpatialWindow)
	for inc.firstUnsealed < len(inc.spatial) {
		c := inc.spatial[inc.firstUnsealed]
		if frontier-c.ev.Last.UnixNano() <= sw {
			break
		}
		c.sealed = true
		inc.firstUnsealed++
	}
}

// frontier returns the lower bound on the First of any event the
// spatial stage will see after this point: the oldest still-queued
// temporal cluster's First, or the watermark when nothing is queued.
func (inc *Incremental) frontier() int64 {
	if len(inc.tQueue) > 0 {
		return inc.tQueue[0].ev.First.UnixNano()
	}
	return inc.watermark
}

// feedSpatial merges one final temporal event into the live spatial
// stage, mirroring spatialCluster exactly.
func (inc *Incremental) feedSpatial(ev *Event) {
	inc.growCode(ev.Code)
	cur := inc.sLast[ev.Code]
	// The !sealed guard never changes the outcome — a sealed cluster's
	// Last is more than SpatialWindow behind every future First by
	// construction — but keeps the immutability of sealed clusters a
	// local invariant instead of a cross-stage proof.
	if cur != nil && !cur.sealed && ev.First.Sub(cur.ev.Last) <= inc.cfg.SpatialWindow {
		if ev.Last.After(cur.ev.Last) {
			cur.ev.Last = ev.Last
		}
		cur.ev.Size += ev.Size
		cur.ev.Midplanes = mergeInts(cur.ev.Midplanes, ev.Midplanes)
		return
	}
	merged := &spatCluster{ev: &Event{
		Code:      ev.Code,
		Component: ev.Component,
		First:     ev.First,
		Last:      ev.Last,
		Midplanes: append([]int(nil), ev.Midplanes...),
		Size:      ev.Size,
	}}
	inc.sLast[ev.Code] = merged
	inc.spatial = append(inc.spatial, merged)
	inc.countCausality(merged.ev, inc.co, inc.total,
		spatialFirsts{live: inc.spatial, n: len(inc.spatial) - 1})
}

// growCode sizes the dense per-code state to admit code.
func (inc *Incremental) growCode(code symtab.ErrcodeID) {
	for int(code) >= len(inc.sLast) {
		inc.sLast = append(inc.sLast, nil)
		inc.total = append(inc.total, 0)
		inc.seen = append(inc.seen, 0)
	}
}

// spatialFirsts is the lookback view countCausality walks: the live
// spatial clusters (their First fields are immutable) optionally
// extended by a shadow tail during Snapshot.
type spatialFirsts struct {
	live []*spatCluster
	n    int // live prefix length to consider
	tail []*Event
}

func (s spatialFirsts) len() int { return s.n + len(s.tail) }

func (s spatialFirsts) at(i int) *Event {
	if i < s.n {
		return s.live[i].ev
	}
	return s.tail[i-s.n]
}

// countCausality adds one new spatial cluster's contribution to the
// co-occurrence counts, mirroring one iteration of mineChunk: total of
// its code, plus one co-occurrence per distinct earlier leader code
// within the causality window. The lookback reads only First fields,
// which are immutable, so counting at creation time equals mining the
// final list.
func (inc *Incremental) countCausality(ev *Event, co map[uint64]int, total []int, prev spatialFirsts) {
	total[ev.Code]++
	first := ev.First.UnixNano()
	inc.stamp++
	for j := prev.len() - 1; j >= 0; j-- {
		lead := prev.at(j)
		if first-lead.First.UnixNano() > int64(inc.cfg.CausalityWindow) {
			break
		}
		if lead.Code == ev.Code || inc.seen[lead.Code] == inc.stamp {
			continue
		}
		inc.seen[lead.Code] = inc.stamp
		co[packPair(lead.Code, ev.Code)]++
	}
}

// Snapshot finalizes the stream as if it ended now and returns the
// surviving events (time-ordered, immutable) and the cascade stats —
// exactly what Pipeline would return over the records fed so far. The
// live clustering state is not modified: sealed spatial clusters are
// shared between snapshots, everything still mutable is cloned and the
// still-queued temporal clusters are flushed through shadow copies of
// the spatial and causality state.
func (inc *Incremental) Snapshot() ([]*Event, Stats) {
	// Clone every not-provably-sealed spatial cluster; the published
	// list swaps clones in for the live pointers.
	clones := make(map[*spatCluster]*Event)
	out := make([]*Event, len(inc.spatial), len(inc.spatial)+len(inc.tQueue))
	for i, c := range inc.spatial {
		if c.sealed {
			out[i] = c.ev
			continue
		}
		cp := *c.ev
		clones[c] = &cp
		out[i] = &cp
	}

	co := inc.co
	total := inc.total
	if len(inc.tQueue) > 0 {
		// Shadow-flush the still-queued temporal clusters, in creation
		// order, through the spatial merge — resolving each code's last
		// cluster through the clone map so merges land in the published
		// copies, never the live state. Causality counts for
		// shadow-created clusters accumulate into private copies.
		co = make(map[uint64]int, len(inc.co))
		for k, v := range inc.co {
			co[k] = v
		}
		total = append([]int(nil), inc.total...)
		shadowLast := make(map[symtab.ErrcodeID]*Event)
		last := func(code symtab.ErrcodeID) *Event {
			if ev, ok := shadowLast[code]; ok {
				return ev
			}
			if int(code) < len(inc.sLast) && inc.sLast[code] != nil {
				c := inc.sLast[code]
				if cl := clones[c]; cl != nil {
					return cl
				}
				// Sealed: immutable and more than a window behind every
				// queued First, so the merge test below always fails.
				return c.ev
			}
			return nil
		}
		var tail []*Event
		for _, tc := range inc.tQueue {
			ev := tc.ev // struct copy; the live cluster may still grow
			if cur := last(ev.Code); cur != nil && ev.First.Sub(cur.Last) <= inc.cfg.SpatialWindow {
				if ev.Last.After(cur.Last) {
					cur.Last = ev.Last
				}
				cur.Size += ev.Size
				cur.Midplanes = mergeInts(cur.Midplanes, ev.Midplanes)
				continue
			}
			nc := &Event{
				Code:      ev.Code,
				Component: ev.Component,
				First:     ev.First,
				Last:      ev.Last,
				Midplanes: append([]int(nil), ev.Midplanes...),
				Size:      ev.Size,
			}
			for int(nc.Code) >= len(total) {
				total = append(total, 0)
				inc.seen = append(inc.seen, 0)
			}
			inc.countCausality(nc, co, total,
				spatialFirsts{live: inc.spatial, n: len(inc.spatial), tail: tail})
			shadowLast[nc.Code] = nc
			tail = append(tail, nc)
			out = append(out, nc)
		}
	}

	rules := rulesFromCounts(inc.cfg, co, total)
	events := Causality(inc.cfg.CausalityWindow, rules, out)
	return events, Stats{
		Input:          inc.input,
		AfterTemporal:  inc.tCount,
		AfterSpatial:   len(out),
		AfterCausality: len(events),
	}
}
