// Package filter implements the RAS-log preprocessing cascade of the
// paper's methodology (Figure 1): temporal filtering (duplicate reports
// from one location), spatial filtering (the same event type reported
// from many locations, as a parallel job's interrupt is reported by all
// its nodes), and causality-related filtering (sets of event types that
// co-occur so reliably that the followers are symptoms of the leader).
// Job-related filtering — the paper's contribution — needs the job log
// and therefore lives in internal/core.
//
// The cascade works over interned symbols (internal/symtab): records
// are columnarized once, sequentially, into a struct-of-arrays store
// (internal/store), and every grouping stage keys on dense integer IDs
// — the temporal pass on a (LocationID, ErrcodeID) pair packed into a
// single uint64 — instead of hashing strings per record.
package filter

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/raslog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// Event is one filtered (independent) fatal event: a cluster of raw
// records of one ERRCODE that temporal-spatial filtering collapsed.
type Event struct {
	// Code is the interned ERRCODE shared by the cluster; resolve it
	// through the run's symtab table at the report boundary.
	Code symtab.ErrcodeID
	// Component is the reporting component of the representative record.
	Component raslog.Component
	// First and Last delimit the cluster in time; First is the event
	// time used by all downstream analyses.
	First, Last time.Time
	// Midplanes are the global midplane indices touched by any record of
	// the cluster, sorted. Events sharing a location may share the
	// backing array; callers must not mutate.
	Midplanes []int
	// Size is the number of raw records collapsed into this event.
	Size int
}

// Time returns the event time (cluster start).
func (e *Event) Time() time.Time { return e.First }

// OnMidplane reports whether the event touched global midplane mp.
func (e *Event) OnMidplane(mp int) bool {
	i := sort.SearchInts(e.Midplanes, mp)
	return i < len(e.Midplanes) && e.Midplanes[i] == mp
}

// Config holds the cascade thresholds.
type Config struct {
	// Parallelism bounds the worker count of the concurrent stage
	// runners (0 = GOMAXPROCS, 1 = sequential). Every worker count
	// produces byte-identical output: symbols are interned sequentially
	// before any sharding (so ID numbering never depends on the worker
	// count), the temporal and spatial passes shard by their cluster key
	// ((LocationID, ErrcodeID), ErrcodeID) and merge in first-record
	// order, and causality mining merges commutative counts, so the
	// cascade's result never depends on scheduling.
	Parallelism int
	// TemporalWindow collapses records with the same (location, code)
	// whose gap is at most this (Liang et al. use 5 minutes).
	TemporalWindow time.Duration
	// SpatialWindow merges same-code clusters across locations whose gap
	// is at most this.
	SpatialWindow time.Duration
	// CausalityWindow is the lag within which a follower event type is
	// considered a symptom of its leader.
	CausalityWindow time.Duration
	// CausalityMinSupport is the minimum number of observed
	// leader→follower co-occurrences for a causal rule.
	CausalityMinSupport int
	// CausalityMinConfidence is the minimum fraction of follower
	// occurrences preceded by the leader.
	CausalityMinConfidence float64
}

// DefaultConfig mirrors the thresholds of the paper's references:
// 5-minute temporal and spatial windows, 10-minute causality lag.
func DefaultConfig() Config {
	return Config{
		TemporalWindow:         5 * time.Minute,
		SpatialWindow:          5 * time.Minute,
		CausalityWindow:        10 * time.Minute,
		CausalityMinSupport:    3,
		CausalityMinConfidence: 0.6,
	}
}

// Stats reports the compression achieved by each stage.
type Stats struct {
	// Input is the number of raw FATAL records.
	Input int
	// AfterTemporal, AfterSpatial and AfterCausality count surviving
	// events after each stage.
	AfterTemporal, AfterSpatial, AfterCausality int
}

// CompressionRatio returns 1 - after/input: the fraction of raw records
// removed by the cascade (the paper reports 98.35%).
func (s Stats) CompressionRatio() float64 {
	if s.Input == 0 {
		return 0
	}
	return 1 - float64(s.AfterCausality)/float64(s.Input)
}

// Pipeline runs the full cascade over the FATAL records of a store and
// returns the independent events in time order, with their symbols
// interned into tab. The temporal, spatial and causality-mining passes
// run on cfg.Parallelism workers; the output — including the IDs tab
// assigns — is byte-identical to the sequential cascade for any worker
// count (see Config.Parallelism).
func Pipeline(cfg Config, tab *symtab.Table, fatal []raslog.Record) ([]*Event, Stats) {
	var st Stats
	st.Input = len(fatal)
	// Interning happens here, sequentially, over the time-sorted input —
	// before any sharding — so ID numbering is parallelism-independent.
	cols := raslog.Columnarize(tab, fatal)
	perLoc := locMidplanes(tab, cols)
	t := temporalSharded(cfg.Parallelism, cfg.TemporalWindow, cols, fatal, perLoc)
	st.AfterTemporal = len(t)
	s := spatialSharded(cfg.Parallelism, cfg.SpatialWindow, t, tab.Errcodes.Len())
	st.AfterSpatial = len(s)
	rules := mineCausalitySharded(cfg.Parallelism, cfg, s, tab.Errcodes.Len())
	c := Causality(cfg.CausalityWindow, rules, s)
	st.AfterCausality = len(c)
	return c, st
}

// PipelineFromLog streams a raw RAS log and runs the cascade over its
// FATAL records without ever materializing the non-fatal bulk: the
// sharded streaming decoder (bounded-memory chunks over the
// internal/parallel pool, cfg.Parallelism workers) discards non-FATAL
// records inside the shards, and the survivors are sorted into the
// (EventTime, RecID) order raslog.Store would have presented. The
// events, stats and symtab IDs are identical to
// Pipeline(cfg, tab, store.Fatal()) over the same log, for any worker
// count.
func PipelineFromLog(cfg Config, tab *symtab.Table, r io.Reader) ([]*Event, Stats, error) {
	fatal, err := raslog.ReadMatchingParallel(r, cfg.Parallelism, (*raslog.Record).Fatal)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("filter: reading RAS log: %w", err)
	}
	sort.SliceStable(fatal, func(i, j int) bool {
		if !fatal[i].EventTime.Equal(fatal[j].EventTime) {
			return fatal[i].EventTime.Before(fatal[j].EventTime)
		}
		return fatal[i].RecID < fatal[j].RecID
	})
	ev, st := Pipeline(cfg, tab, fatal)
	return ev, st, nil
}

// packKey packs a temporal-cluster stream key — (LocationID, ErrcodeID)
// — into one uint64, the map key of the temporal pass.
func packKey(loc symtab.LocationID, code symtab.ErrcodeID) uint64 {
	return uint64(uint32(loc))<<32 | uint64(uint32(code))
}

// locMidplanes resolves each distinct LocationID seen in cols to its
// global midplane indices, once per location instead of once per
// record. The returned slices are shared by every event at that
// location (read-only downstream).
func locMidplanes(tab *symtab.Table, cols *store.Events) [][]int {
	perLoc := make([][]int, tab.Locations.Len())
	done := make([]bool, tab.Locations.Len())
	for _, l := range cols.Loc {
		if !done[l] {
			done[l] = true
			perLoc[l] = raslog.LocationMidplanes(tab.Locations.Name(l))
		}
	}
	return perLoc
}

// Temporal collapses same-(location, code) records whose inter-record
// gap is at most window, interning symbols into tab. Records must be
// time-ordered. The result is one Event per cluster, still
// location-specific.
func Temporal(tab *symtab.Table, window time.Duration, recs []raslog.Record) []*Event {
	cols := raslog.Columnarize(tab, recs)
	out := untag(temporalCluster(window, cols, recs, allIndices(len(recs)), locMidplanes(tab, cols)))
	sortEvents(out)
	return out
}

// Spatial merges same-code events (from different locations) whose gap
// is at most window. Input must be time-ordered (Temporal output is).
func Spatial(window time.Duration, events []*Event) []*Event {
	out := untag(spatialCluster(window, events, allIndices(len(events)), maxCode(events)+1))
	sortEvents(out)
	return out
}

// maxCode returns the largest ErrcodeID among events (-1 when empty);
// stages that run without the table in hand size their dense
// per-code state from it.
func maxCode(events []*Event) int {
	m := -1
	for _, ev := range events {
		if int(ev.Code) > m {
			m = int(ev.Code)
		}
	}
	return m
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Rule is a mined causality rule: occurrences of Follower within the
// window after Leader are symptoms of the Leader.
type Rule struct {
	Leader, Follower symtab.ErrcodeID
	// Support is the number of observed co-occurrences.
	Support int
	// Confidence is the fraction of Follower events preceded by Leader.
	Confidence float64
}

// MineCausality scans the event stream for leader→follower pairs that
// co-occur within the causality window with enough support and
// confidence. Self-pairs are excluded (temporal filtering owns those).
func MineCausality(cfg Config, events []*Event) []Rule {
	n := maxCode(events) + 1
	pc := mineChunk(cfg, events, 0, len(events), n)
	return rulesFromCounts(cfg, pc.co, pc.total)
}

// rulesFromCounts turns mined co-occurrence counts into the rule set,
// sorted by (Leader, Follower) ID — first-seen symbol order.
func rulesFromCounts(cfg Config, coCount map[uint64]int, total []int) []Rule {
	// Few pairs survive the support/confidence cuts; a small fixed
	// capacity avoids both per-iteration growth and a len(coCount)
	// allocation that would dwarf the survivors.
	rules := make([]Rule, 0, min(len(coCount), 64))
	for p, n := range coCount {
		if n < cfg.CausalityMinSupport {
			continue
		}
		lead, follow := unpackPair(p)
		conf := float64(n) / float64(total[follow])
		if conf < cfg.CausalityMinConfidence {
			continue
		}
		rules = append(rules, Rule{Leader: lead, Follower: follow, Support: n, Confidence: conf})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Leader != rules[j].Leader {
			return rules[i].Leader < rules[j].Leader
		}
		return rules[i].Follower < rules[j].Follower
	})
	return rules
}

// Causality drops follower events that occur within the window after
// their leader, per the mined rules.
func Causality(window time.Duration, rules []Rule, events []*Event) []*Event {
	n := maxCode(events) + 1
	for _, r := range rules {
		if int(r.Leader) >= n {
			n = int(r.Leader) + 1
		}
		if int(r.Follower) >= n {
			n = int(r.Follower) + 1
		}
	}
	leadersOf := make([][]symtab.ErrcodeID, n)
	for _, r := range rules {
		leadersOf[r.Follower] = append(leadersOf[r.Follower], r.Leader)
	}
	lastAt := make([]int64, n)
	seen := make([]bool, n)
	out := make([]*Event, 0, len(events))
	for _, ev := range events {
		first := ev.First.UnixNano()
		drop := false
		for _, lead := range leadersOf[ev.Code] {
			if t := lastAt[lead]; seen[lead] && first > t && first-t <= int64(window) {
				drop = true
				break
			}
		}
		lastAt[ev.Code] = first
		seen[ev.Code] = true
		if !drop {
			out = append(out, ev)
		}
	}
	return out
}

func sortEvents(evs []*Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].First.Before(evs[j].First) })
}

func mergeInts(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}
