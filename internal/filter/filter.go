// Package filter implements the RAS-log preprocessing cascade of the
// paper's methodology (Figure 1): temporal filtering (duplicate reports
// from one location), spatial filtering (the same event type reported
// from many locations, as a parallel job's interrupt is reported by all
// its nodes), and causality-related filtering (sets of event types that
// co-occur so reliably that the followers are symptoms of the leader).
// Job-related filtering — the paper's contribution — needs the job log
// and therefore lives in internal/core.
package filter

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/raslog"
)

// Event is one filtered (independent) fatal event: a cluster of raw
// records of one ERRCODE that temporal-spatial filtering collapsed.
type Event struct {
	// Code is the ERRCODE shared by the cluster.
	Code string
	// Component is the reporting component of the representative record.
	Component raslog.Component
	// First and Last delimit the cluster in time; First is the event
	// time used by all downstream analyses.
	First, Last time.Time
	// Midplanes are the global midplane indices touched by any record of
	// the cluster, sorted.
	Midplanes []int
	// Size is the number of raw records collapsed into this event.
	Size int
}

// Time returns the event time (cluster start).
func (e *Event) Time() time.Time { return e.First }

// OnMidplane reports whether the event touched global midplane mp.
func (e *Event) OnMidplane(mp int) bool {
	i := sort.SearchInts(e.Midplanes, mp)
	return i < len(e.Midplanes) && e.Midplanes[i] == mp
}

// Config holds the cascade thresholds.
type Config struct {
	// Parallelism bounds the worker count of the concurrent stage
	// runners (0 = GOMAXPROCS, 1 = sequential). Every worker count
	// produces byte-identical output: the temporal and spatial passes
	// shard by their cluster key (location+code, code) and merge in
	// first-record order, and causality mining merges commutative
	// counts, so the cascade's result never depends on scheduling.
	Parallelism int
	// TemporalWindow collapses records with the same (location, code)
	// whose gap is at most this (Liang et al. use 5 minutes).
	TemporalWindow time.Duration
	// SpatialWindow merges same-code clusters across locations whose gap
	// is at most this.
	SpatialWindow time.Duration
	// CausalityWindow is the lag within which a follower event type is
	// considered a symptom of its leader.
	CausalityWindow time.Duration
	// CausalityMinSupport is the minimum number of observed
	// leader→follower co-occurrences for a causal rule.
	CausalityMinSupport int
	// CausalityMinConfidence is the minimum fraction of follower
	// occurrences preceded by the leader.
	CausalityMinConfidence float64
}

// DefaultConfig mirrors the thresholds of the paper's references:
// 5-minute temporal and spatial windows, 10-minute causality lag.
func DefaultConfig() Config {
	return Config{
		TemporalWindow:         5 * time.Minute,
		SpatialWindow:          5 * time.Minute,
		CausalityWindow:        10 * time.Minute,
		CausalityMinSupport:    3,
		CausalityMinConfidence: 0.6,
	}
}

// Stats reports the compression achieved by each stage.
type Stats struct {
	// Input is the number of raw FATAL records.
	Input int
	// AfterTemporal, AfterSpatial and AfterCausality count surviving
	// events after each stage.
	AfterTemporal, AfterSpatial, AfterCausality int
}

// CompressionRatio returns 1 - after/input: the fraction of raw records
// removed by the cascade (the paper reports 98.35%).
func (s Stats) CompressionRatio() float64 {
	if s.Input == 0 {
		return 0
	}
	return 1 - float64(s.AfterCausality)/float64(s.Input)
}

// Pipeline runs the full cascade over the FATAL records of a store and
// returns the independent events in time order. The temporal, spatial
// and causality-mining passes run on cfg.Parallelism workers; the
// output is byte-identical to the sequential cascade for any worker
// count (see Config.Parallelism).
func Pipeline(cfg Config, fatal []raslog.Record) ([]*Event, Stats) {
	var st Stats
	st.Input = len(fatal)
	t := temporalSharded(cfg.Parallelism, cfg.TemporalWindow, fatal)
	st.AfterTemporal = len(t)
	s := spatialSharded(cfg.Parallelism, cfg.SpatialWindow, t)
	st.AfterSpatial = len(s)
	rules := mineCausalitySharded(cfg.Parallelism, cfg, s)
	c := Causality(cfg.CausalityWindow, rules, s)
	st.AfterCausality = len(c)
	return c, st
}

// PipelineFromLog streams a raw RAS log and runs the cascade over its
// FATAL records without ever materializing the non-fatal bulk: the
// sharded streaming decoder (bounded-memory chunks over the
// internal/parallel pool, cfg.Parallelism workers) discards non-FATAL
// records inside the shards, and the survivors are sorted into the
// (EventTime, RecID) order raslog.Store would have presented. The
// events and stats are identical to Pipeline(cfg, store.Fatal()) over
// the same log, for any worker count.
func PipelineFromLog(cfg Config, r io.Reader) ([]*Event, Stats, error) {
	fatal, err := raslog.ReadMatchingParallel(r, cfg.Parallelism, (*raslog.Record).Fatal)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("filter: reading RAS log: %w", err)
	}
	sort.SliceStable(fatal, func(i, j int) bool {
		if !fatal[i].EventTime.Equal(fatal[j].EventTime) {
			return fatal[i].EventTime.Before(fatal[j].EventTime)
		}
		return fatal[i].RecID < fatal[j].RecID
	})
	ev, st := Pipeline(cfg, fatal)
	return ev, st, nil
}

// locKey identifies a temporal-cluster stream.
type locKey struct {
	loc  string
	code string
}

// Temporal collapses same-(location, code) records whose inter-record
// gap is at most window. Records must be time-ordered. The result is
// one Event per cluster, still location-specific.
func Temporal(window time.Duration, recs []raslog.Record) []*Event {
	out := untag(temporalCluster(window, recs, allIndices(len(recs))))
	sortEvents(out)
	return out
}

// Spatial merges same-code events (from different locations) whose gap
// is at most window. Input must be time-ordered (Temporal output is).
func Spatial(window time.Duration, events []*Event) []*Event {
	out := untag(spatialCluster(window, events, allIndices(len(events))))
	sortEvents(out)
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Rule is a mined causality rule: occurrences of Follower within the
// window after Leader are symptoms of the Leader.
type Rule struct {
	Leader, Follower string
	// Support is the number of observed co-occurrences.
	Support int
	// Confidence is the fraction of Follower events preceded by Leader.
	Confidence float64
}

// codePair is a (leader, follower) ERRCODE pair.
type codePair struct{ a, b string }

// MineCausality scans the event stream for leader→follower pairs that
// co-occur within the causality window with enough support and
// confidence. Self-pairs are excluded (temporal filtering owns those).
func MineCausality(cfg Config, events []*Event) []Rule {
	pc := mineChunk(cfg, events, 0, len(events))
	return rulesFromCounts(cfg, pc.co, pc.total)
}

// rulesFromCounts turns mined co-occurrence counts into the sorted rule
// set.
func rulesFromCounts(cfg Config, coCount map[codePair]int, total map[string]int) []Rule {
	var rules []Rule
	for p, n := range coCount {
		if n < cfg.CausalityMinSupport {
			continue
		}
		conf := float64(n) / float64(total[p.b])
		if conf < cfg.CausalityMinConfidence {
			continue
		}
		rules = append(rules, Rule{Leader: p.a, Follower: p.b, Support: n, Confidence: conf})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Leader != rules[j].Leader {
			return rules[i].Leader < rules[j].Leader
		}
		return rules[i].Follower < rules[j].Follower
	})
	return rules
}

// Causality drops follower events that occur within the window after
// their leader, per the mined rules.
func Causality(window time.Duration, rules []Rule, events []*Event) []*Event {
	leadersOf := make(map[string]map[string]bool)
	for _, r := range rules {
		m := leadersOf[r.Follower]
		if m == nil {
			m = make(map[string]bool)
			leadersOf[r.Follower] = m
		}
		m[r.Leader] = true
	}
	lastAt := make(map[string]time.Time)
	var out []*Event
	for _, ev := range events {
		drop := false
		for lead := range leadersOf[ev.Code] {
			if t, ok := lastAt[lead]; ok && ev.First.Sub(t) <= window && ev.First.After(t) {
				drop = true
				break
			}
		}
		lastAt[ev.Code] = ev.First
		if !drop {
			out = append(out, ev)
		}
	}
	return out
}

func sortEvents(evs []*Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].First.Before(evs[j].First) })
}

func mergeInts(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}
