package filter

// Bridge between the cascade and the segmented store's pushdown reader:
// CascadeQuery states, as a store.Query, exactly which rows the cascade
// consumes — FATAL severity, any time, any code, any location — so the
// store's zone maps can refute whole segments (noise-only runs, cold
// time ranges) without reading their columns. FeedRow then feeds one
// merged row into the streaming cascade, re-interning its names into
// the global table in merge order, which is the remap that keeps the
// segmented path's ID numbering — and therefore all downstream output —
// identical to the single-block path's.

import (
	"time"

	"repro/internal/raslog"
	"repro/internal/store"
)

// CascadeQuery returns the pushdown predicate for the filter cascade's
// input: FATAL records only. Readers consult it against per-segment
// zone maps before touching column payloads.
func CascadeQuery() store.Query {
	return store.Query{SevMask: 1 << uint(raslog.SevFatal)}
}

// FeedRow ingests one merged store row, in the (TimeNS, RecID) order
// the merge reader yields. Only the columns the cascade reads are
// reconstructed; the cascade interns Code then Loc per row, exactly as
// Feed does for full records, so ID numbering matches the single-block
// path over the same stream.
func (inc *Incremental) FeedRow(row store.Row) error {
	rec := raslog.Record{
		RecID:     row.RecID,
		Component: raslog.Component(row.Comp),
		ErrCode:   row.Code,
		Severity:  raslog.Severity(row.Sev),
		EventTime: time.Unix(0, row.TimeNS).UTC(),
		Location:  row.Loc,
	}
	return inc.Feed(&rec)
}
