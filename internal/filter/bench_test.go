package filter

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/raslog"
	"repro/internal/symtab"
)

// benchFatalStream builds a grouping-heavy, time-sorted FATAL corpus:
// realistic long ERRCODE and location strings spread over many
// (location, code) streams, with tight bursts so every cascade stage
// has real clustering work to do. Grouping cost dominates, which is
// exactly what the symtab refactor targets.
func benchFatalStream(n int) []raslog.Record {
	codes := make([]string, 48)
	for i := range codes {
		codes[i] = "_bgp_err_" + []string{"ddr", "cns", "l1p", "l2", "torus", "tree"}[i%6] +
			"_unit" + string(rune('a'+i%26)) + "_machinecheck_extended_diagnostic"
	}
	rng := rand.New(rand.NewSource(17))
	recs := make([]raslog.Record, 0, n)
	at := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			at = at.Add(time.Duration(rng.Intn(3600*6)) * time.Second)
		} else {
			at = at.Add(time.Duration(rng.Intn(45)) * time.Second)
		}
		recs = append(recs, raslog.Record{
			RecID: int64(i + 1), MsgID: "KERN_0802", Component: raslog.CompKernel,
			ErrCode: codes[rng.Intn(len(codes))], Severity: raslog.SevFatal,
			EventTime: at,
			Location:  bgp.MidplaneLocation(rng.Intn(64)).String(),
		})
	}
	return recs
}

// BenchmarkFilterCascade measures the full temporal-spatial-causality
// cascade on the interned-ID path: symbols are interned once and every
// grouping stage keys on dense integer IDs (a packed uint64 for the
// temporal pass).
func BenchmarkFilterCascade(b *testing.B) {
	recs := benchFatalStream(10000)
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs, _ := Pipeline(cfg, symtab.NewTable(), recs)
		if len(evs) == 0 {
			b.Fatal("cascade produced no events")
		}
	}
}

// BenchmarkFilterCascadeLegacy is the string-keyed reference cascade —
// the implementation this package had before the symtab refactor,
// preserved here verbatim in structure (struct keys of raw strings,
// string-keyed maps in every stage) — over the identical corpus. The
// bench gate holds the ID path's win over this reference.
func BenchmarkFilterCascadeLegacy(b *testing.B) {
	recs := benchFatalStream(10000)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs := legacyCascade(cfg, recs)
		if len(evs) == 0 {
			b.Fatal("cascade produced no events")
		}
	}
}

// legacyEvent mirrors Event with the pre-refactor string Code.
type legacyEvent struct {
	Code        string
	Component   raslog.Component
	First, Last time.Time
	Midplanes   []int
	Size        int
}

type legacyLocKey struct{ loc, code string }

type legacyPair struct{ a, b string }

func legacyCascade(cfg Config, recs []raslog.Record) []*legacyEvent {
	t := legacyTemporal(cfg.TemporalWindow, recs)
	s := legacySpatial(cfg.SpatialWindow, t)
	rules := legacyMine(cfg, s)
	return legacyCausality(cfg.CausalityWindow, rules, s)
}

func legacyTemporal(window time.Duration, recs []raslog.Record) []*legacyEvent {
	open := make(map[legacyLocKey]*legacyEvent)
	lastSeen := make(map[legacyLocKey]time.Time)
	var out []*legacyEvent
	for i := range recs {
		r := &recs[i]
		k := legacyLocKey{loc: r.Location, code: r.ErrCode}
		ev, ok := open[k]
		if ok && r.EventTime.Sub(lastSeen[k]) <= window {
			ev.Last = r.EventTime
			ev.Size++
			lastSeen[k] = r.EventTime
			continue
		}
		ev = &legacyEvent{
			Code: r.ErrCode, Component: r.Component,
			First: r.EventTime, Last: r.EventTime,
			Midplanes: raslog.LocationMidplanes(r.Location), Size: 1,
		}
		open[k] = ev
		lastSeen[k] = r.EventTime
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].First.Before(out[j].First) })
	return out
}

func legacySpatial(window time.Duration, events []*legacyEvent) []*legacyEvent {
	open := make(map[string]*legacyEvent)
	var out []*legacyEvent
	for _, ev := range events {
		cur, ok := open[ev.Code]
		if ok && ev.First.Sub(cur.Last) <= window {
			if ev.Last.After(cur.Last) {
				cur.Last = ev.Last
			}
			cur.Size += ev.Size
			cur.Midplanes = mergeInts(cur.Midplanes, ev.Midplanes)
			continue
		}
		merged := &legacyEvent{
			Code: ev.Code, Component: ev.Component,
			First: ev.First, Last: ev.Last,
			Midplanes: append([]int(nil), ev.Midplanes...), Size: ev.Size,
		}
		open[ev.Code] = merged
		out = append(out, merged)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].First.Before(out[j].First) })
	return out
}

func legacyMine(cfg Config, events []*legacyEvent) map[legacyPair]bool {
	co := make(map[legacyPair]int)
	total := make(map[string]int)
	for i, ev := range events {
		total[ev.Code]++
		seen := make(map[string]bool)
		for j := i - 1; j >= 0; j-- {
			lead := events[j]
			if ev.First.Sub(lead.First) > cfg.CausalityWindow {
				break
			}
			if lead.Code == ev.Code || seen[lead.Code] {
				continue
			}
			seen[lead.Code] = true
			co[legacyPair{lead.Code, ev.Code}]++
		}
	}
	rules := make(map[legacyPair]bool)
	for p, n := range co {
		if n < cfg.CausalityMinSupport {
			continue
		}
		if float64(n)/float64(total[p.b]) < cfg.CausalityMinConfidence {
			continue
		}
		rules[p] = true
	}
	return rules
}

func legacyCausality(window time.Duration, rules map[legacyPair]bool, events []*legacyEvent) []*legacyEvent {
	leadersOf := make(map[string][]string)
	for p := range rules {
		leadersOf[p.b] = append(leadersOf[p.b], p.a)
	}
	lastAt := make(map[string]time.Time)
	var out []*legacyEvent
	for _, ev := range events {
		drop := false
		for _, lead := range leadersOf[ev.Code] {
			if t, ok := lastAt[lead]; ok && ev.First.Sub(t) <= window && ev.First.After(t) {
				drop = true
				break
			}
		}
		lastAt[ev.Code] = ev.First
		if !drop {
			out = append(out, ev)
		}
	}
	return out
}
