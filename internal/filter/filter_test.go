package filter

import (
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/symtab"
)

var t0 = time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)

func rec(code, loc string, offset time.Duration) raslog.Record {
	return raslog.Record{
		MsgID: "M", Component: raslog.CompKernel, ErrCode: code,
		Severity: raslog.SevFatal, EventTime: t0.Add(offset), Location: loc,
	}
}

// cid resolves a code name to the ID tab assigned it; the name must
// have been interned by the stage under test.
func cid(t *testing.T, tab *symtab.Table, name string) symtab.ErrcodeID {
	t.Helper()
	id, ok := tab.Errcodes.Lookup(name)
	if !ok {
		t.Fatalf("code %q was never interned", name)
	}
	return id
}

func TestTemporalCollapsesDuplicates(t *testing.T) {
	recs := []raslog.Record{
		rec("a", "R00-M0", 0),
		rec("a", "R00-M0", time.Minute),    // within window: same cluster
		rec("a", "R00-M0", 3*time.Minute),  // chained: gap 2 min from last
		rec("a", "R00-M0", 20*time.Minute), // new cluster
		rec("a", "R00-M1", 30*time.Second), // different location: own cluster
		rec("b", "R00-M0", 30*time.Second), // different code: own cluster
	}
	evs := Temporal(symtab.NewTable(), 5*time.Minute, recs)
	if len(evs) != 4 {
		t.Fatalf("Temporal: %d events, want 4", len(evs))
	}
	if evs[0].Size != 3 || !evs[0].Last.Equal(t0.Add(3*time.Minute)) {
		t.Errorf("first cluster = size %d last %v", evs[0].Size, evs[0].Last)
	}
}

func TestTemporalSlidingWindow(t *testing.T) {
	// A storm with sub-window gaps but total span above the window must
	// still collapse (the window slides with the last record).
	var recs []raslog.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, rec("a", "R00-M0", time.Duration(i)*4*time.Minute))
	}
	evs := Temporal(symtab.NewTable(), 5*time.Minute, recs)
	if len(evs) != 1 || evs[0].Size != 10 {
		t.Fatalf("storm not collapsed: %d events", len(evs))
	}
}

func TestSpatialMergesAcrossLocations(t *testing.T) {
	recs := []raslog.Record{
		rec("a", "R00-M0", 0),
		rec("a", "R00-M1", time.Minute),
		rec("a", "R01-M0", 2*time.Minute),
		rec("a", "R10-M0", time.Hour), // far later: separate event
		rec("b", "R00-M0", time.Minute),
	}
	tab := symtab.NewTable()
	evs, st := Pipeline(DefaultConfig(), tab, recs)
	if st.Input != 5 || st.AfterTemporal != 5 || st.AfterSpatial != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if len(evs) != 3 {
		t.Fatalf("pipeline: %d events, want 3", len(evs))
	}
	first := evs[0]
	if first.Code == cid(t, tab, "a") {
		if len(first.Midplanes) != 3 {
			t.Errorf("merged midplanes = %v", first.Midplanes)
		}
	}
	// Events must be time-ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].First.Before(evs[i-1].First) {
			t.Fatal("events not time-ordered")
		}
	}
}

func TestOnMidplane(t *testing.T) {
	evs := Temporal(symtab.NewTable(), time.Minute, []raslog.Record{rec("a", "R01", 0)})
	if len(evs) != 1 {
		t.Fatal("want one event")
	}
	if !evs[0].OnMidplane(2) || !evs[0].OnMidplane(3) || evs[0].OnMidplane(4) {
		t.Errorf("OnMidplane wrong for rack location: %v", evs[0].Midplanes)
	}
}

func TestMineCausalityFindsPlantedRule(t *testing.T) {
	// Plant: every "b" follows an "a" within 2 minutes; also unrelated "c".
	var recs []raslog.Record
	for i := 0; i < 6; i++ {
		base := time.Duration(i) * time.Hour
		recs = append(recs,
			rec("a", "R00-M0", base),
			rec("b", "R00-M1", base+2*time.Minute),
			rec("c", "R02-M0", base+30*time.Minute),
		)
	}
	cfg := DefaultConfig()
	tab := symtab.NewTable()
	evs := Spatial(cfg.SpatialWindow, Temporal(tab, cfg.TemporalWindow, recs))
	rules := MineCausality(cfg, evs)
	a, b, c := cid(t, tab, "a"), cid(t, tab, "b"), cid(t, tab, "c")
	found := false
	for _, r := range rules {
		if r.Leader == a && r.Follower == b {
			found = true
			if r.Support < 6 || r.Confidence < 0.99 {
				t.Errorf("rule stats = %+v", r)
			}
		}
		if r.Follower == c {
			t.Errorf("spurious rule onto c: %+v", r)
		}
	}
	if !found {
		t.Fatal("planted a->b rule not mined")
	}
	// Applying the rules drops every b.
	kept := Causality(cfg.CausalityWindow, rules, evs)
	for _, ev := range kept {
		if ev.Code == b {
			t.Errorf("b event at %v survived causality filtering", ev.First)
		}
	}
	if len(kept) != 12 {
		t.Errorf("kept %d events, want 12 (6 a + 6 c)", len(kept))
	}
}

func TestCausalityKeepsIndependentFollowers(t *testing.T) {
	// A "b" far from any "a" survives even with an a->b rule.
	tab := symtab.NewTable()
	a, b := tab.Errcodes.Intern("a"), tab.Errcodes.Intern("b")
	rules := []Rule{{Leader: a, Follower: b, Support: 5, Confidence: 1}}
	evs := []*Event{
		{Code: a, First: t0, Last: t0},
		{Code: b, First: t0.Add(time.Hour), Last: t0.Add(time.Hour)},
	}
	kept := Causality(10*time.Minute, rules, evs)
	if len(kept) != 2 {
		t.Fatalf("independent follower dropped: kept %d", len(kept))
	}
}

func TestPipelineCompressionOnStorm(t *testing.T) {
	// A heavy storm: one code, 500 records over 3 minutes from many
	// locations, plus a handful of separate events. Compression should
	// be drastic, as the paper's 98.35%.
	var recs []raslog.Record
	for i := 0; i < 500; i++ {
		loc := "R00-M0"
		if i%3 == 1 {
			loc = "R00-M1"
		} else if i%3 == 2 {
			loc = "R01-M0"
		}
		recs = append(recs, rec("storm", loc, time.Duration(i)*360*time.Millisecond))
	}
	recs = append(recs, rec("other", "R05-M0", 48*time.Hour))
	evs, st := Pipeline(DefaultConfig(), symtab.NewTable(), recs)
	if len(evs) != 2 {
		t.Fatalf("pipeline: %d events, want 2", len(evs))
	}
	if st.CompressionRatio() < 0.95 {
		t.Errorf("compression = %v, want > 0.95", st.CompressionRatio())
	}
}

func TestStatsZero(t *testing.T) {
	evs, st := Pipeline(DefaultConfig(), symtab.NewTable(), nil)
	if len(evs) != 0 || st.CompressionRatio() != 0 {
		t.Errorf("empty pipeline: %d events, ratio %v", len(evs), st.CompressionRatio())
	}
}
