package filter

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/symtab"
)

// streamLog marshals records in shuffled-but-deterministic file order;
// PipelineFromLog must re-establish (EventTime, RecID) order itself.
func streamLog(t *testing.T, recs []raslog.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := raslog.NewWriter(&buf)
	for i := range recs {
		// Interleave from both ends so file order != time order.
		j := i / 2
		if i%2 == 1 {
			j = len(recs) - 1 - i/2
		}
		if err := w.Write(recs[j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelineFromLogMatchesStore checks the streaming entry point
// against the load-everything path: same events, same stats, for any
// worker count, even when the file is not time-ordered.
func TestPipelineFromLogMatchesStore(t *testing.T) {
	recs := syntheticRecords(900)
	log := streamLog(t, recs)

	store := raslog.NewStore(recs)
	cfg := DefaultConfig()
	wantTab := symtab.NewTable()
	wantEv, wantSt := Pipeline(cfg, wantTab, store.Fatal())
	want := wantTab.Freeze()

	for _, workers := range []int{1, 2, 8} {
		cfg.Parallelism = workers
		tab := symtab.NewTable()
		gotEv, gotSt, err := PipelineFromLog(cfg, tab, bytes.NewReader(log))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotSt != wantSt {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotSt, wantSt)
		}
		if len(gotEv) != len(wantEv) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(gotEv), len(wantEv))
		}
		for i := range gotEv {
			if !eventsEqual(gotEv[i], wantEv[i]) {
				t.Fatalf("workers=%d: event %d differs:\n got %+v\nwant %+v", workers, i, gotEv[i], wantEv[i])
			}
		}
		// The event Code comparisons above are only meaningful because
		// the streaming path must also assign identical IDs.
		got := tab.Freeze()
		if !reflect.DeepEqual(got.Errcodes.All(), want.Errcodes.All()) ||
			!reflect.DeepEqual(got.Locations.All(), want.Locations.All()) {
			t.Fatalf("workers=%d: symtab numbering diverges from store path", workers)
		}
	}
}

func TestPipelineFromLogPropagatesDecodeError(t *testing.T) {
	recs := syntheticRecords(50)
	log := append(streamLog(t, recs), []byte("corrupt line\n")...)
	_, _, err := PipelineFromLog(DefaultConfig(), symtab.NewTable(), bytes.NewReader(log))
	if err == nil || !strings.Contains(err.Error(), "line 51") {
		t.Fatalf("want decode error naming line 51, got %v", err)
	}
}

func eventsEqual(a, b *Event) bool {
	if a.Code != b.Code || a.Component != b.Component || a.Size != b.Size ||
		!a.First.Equal(b.First) || !a.Last.Equal(b.Last) || len(a.Midplanes) != len(b.Midplanes) {
		return false
	}
	for i := range a.Midplanes {
		if a.Midplanes[i] != b.Midplanes[i] {
			return false
		}
	}
	return true
}

// syntheticRecords builds a deterministic FATAL+noise mix with storm
// structure so every cascade stage has work to do.
func syntheticRecords(n int) []raslog.Record {
	base := time.Date(2008, 4, 1, 0, 0, 0, 0, time.UTC)
	codes := []string{"code_a", "code_b", "code_c"}
	var out []raslog.Record
	for i := 0; i < n; i++ {
		sev := raslog.SevInfo
		if i%4 == 0 {
			sev = raslog.SevFatal
		}
		out = append(out, raslog.Record{
			RecID:     int64(i + 1),
			MsgID:     "KERN_0802",
			Component: raslog.CompKernel,
			ErrCode:   codes[(i/7)%len(codes)],
			Severity:  sev,
			EventTime: base.Add(time.Duration(i/3) * 90 * time.Second),
			Flags:     "L",
			Location:  "R0" + string(rune('0'+(i%5))) + "-M0",
			Serial:    "SN",
			Message:   "m",
		})
	}
	return out
}
