package filter

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// stageInput columnarizes recs into a fresh table and returns everything
// the sharded stage runners need.
func stageInput(recs []raslog.Record) (*symtab.Table, *store.Events, [][]int) {
	tab := symtab.NewTable()
	cols := raslog.Columnarize(tab, recs)
	return tab, cols, locMidplanes(tab, cols)
}

// TestShardedStagesMatchSequential is the stage-level determinism
// oracle: every worker count must reproduce the sequential cascade
// byte for byte, on streams with bursts, shared codes, and collisions.
func TestShardedStagesMatchSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		recs := randomFatalStream(seed, 5000)

		wantT := Temporal(symtab.NewTable(), 5*time.Minute, recs)
		wantS := Spatial(5*time.Minute, wantT)
		wantR := MineCausality(DefaultConfig(), wantS)

		for _, p := range []int{2, 3, 8, 16} {
			tab, cols, perLoc := stageInput(recs)
			gotT := temporalSharded(p, 5*time.Minute, cols, recs, perLoc)
			if !reflect.DeepEqual(gotT, wantT) {
				t.Fatalf("seed %d p=%d: temporal shards diverge (%d vs %d events)",
					seed, p, len(gotT), len(wantT))
			}
			gotS := spatialSharded(p, 5*time.Minute, gotT, tab.Errcodes.Len())
			if !reflect.DeepEqual(gotS, wantS) {
				t.Fatalf("seed %d p=%d: spatial shards diverge (%d vs %d events)",
					seed, p, len(gotS), len(wantS))
			}
			gotR := mineCausalitySharded(p, DefaultConfig(), gotS, tab.Errcodes.Len())
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("seed %d p=%d: mined rules diverge (%v vs %v)",
					seed, p, gotR, wantR)
			}
		}
	}
}

// TestPipelineParallelismKnob runs the whole cascade at several worker
// counts and requires identical events and stats.
func TestPipelineParallelismKnob(t *testing.T) {
	recs := randomFatalStream(7, 8000)
	seq := DefaultConfig()
	seq.Parallelism = 1
	wantEvs, wantSt := Pipeline(seq, symtab.NewTable(), recs)
	for _, p := range []int{0, 2, 4, 9} {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		evs, st := Pipeline(cfg, symtab.NewTable(), recs)
		if st != wantSt {
			t.Fatalf("p=%d: stats %+v, want %+v", p, st, wantSt)
		}
		if !reflect.DeepEqual(evs, wantEvs) {
			t.Fatalf("p=%d: events diverge (%d vs %d)", p, len(evs), len(wantEvs))
		}
	}
}

// TestSymtabIDsParallelismIndependent is the ID-determinism oracle the
// whole refactor rests on: the dictionary a Pipeline run builds —
// names, IDs, ordering — must be identical for the sequential run and
// every parallel run, because interning happens over the time-sorted
// stream before sharding. Run under -race in CI (make race / ci.sh).
func TestSymtabIDsParallelismIndependent(t *testing.T) {
	recs := randomFatalStream(13, 6000)
	seq := DefaultConfig()
	seq.Parallelism = 1
	tabSeq := symtab.NewTable()
	Pipeline(seq, tabSeq, recs)
	want := tabSeq.Freeze()

	for _, p := range []int{2, 8, 0} {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		tab := symtab.NewTable()
		Pipeline(cfg, tab, recs)
		got := tab.Freeze()
		if !reflect.DeepEqual(got.Errcodes.All(), want.Errcodes.All()) {
			t.Fatalf("p=%d: errcode numbering diverges:\n got %v\nwant %v",
				p, got.Errcodes.All(), want.Errcodes.All())
		}
		if !reflect.DeepEqual(got.Locations.All(), want.Locations.All()) {
			t.Fatalf("p=%d: location numbering diverges (%d vs %d entries)",
				p, got.Locations.Len(), want.Locations.Len())
		}
	}
}

// TestShardedTinyInputs exercises the small-input fallbacks.
func TestShardedTinyInputs(t *testing.T) {
	for n := 0; n < 5; n++ {
		recs := randomFatalStream(11, n)
		want := Temporal(symtab.NewTable(), 5*time.Minute, recs)
		_, cols, perLoc := stageInput(recs)
		got := temporalSharded(8, 5*time.Minute, cols, recs, perLoc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: diverge", n)
		}
	}
}
