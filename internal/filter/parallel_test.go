package filter

import (
	"reflect"
	"testing"
	"time"
)

// TestShardedStagesMatchSequential is the stage-level determinism
// oracle: every worker count must reproduce the sequential cascade
// byte for byte, on streams with bursts, shared codes, and collisions.
func TestShardedStagesMatchSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		recs := randomFatalStream(seed, 5000)

		wantT := Temporal(5*time.Minute, recs)
		wantS := Spatial(5*time.Minute, wantT)
		wantR := MineCausality(DefaultConfig(), wantS)

		for _, p := range []int{2, 3, 8, 16} {
			gotT := temporalSharded(p, 5*time.Minute, recs)
			if !reflect.DeepEqual(gotT, wantT) {
				t.Fatalf("seed %d p=%d: temporal shards diverge (%d vs %d events)",
					seed, p, len(gotT), len(wantT))
			}
			gotS := spatialSharded(p, 5*time.Minute, gotT)
			if !reflect.DeepEqual(gotS, wantS) {
				t.Fatalf("seed %d p=%d: spatial shards diverge (%d vs %d events)",
					seed, p, len(gotS), len(wantS))
			}
			gotR := mineCausalitySharded(p, DefaultConfig(), gotS)
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("seed %d p=%d: mined rules diverge (%v vs %v)",
					seed, p, gotR, wantR)
			}
		}
	}
}

// TestPipelineParallelismKnob runs the whole cascade at several worker
// counts and requires identical events and stats.
func TestPipelineParallelismKnob(t *testing.T) {
	recs := randomFatalStream(7, 8000)
	seq := DefaultConfig()
	seq.Parallelism = 1
	wantEvs, wantSt := Pipeline(seq, recs)
	for _, p := range []int{0, 2, 4, 9} {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		evs, st := Pipeline(cfg, recs)
		if st != wantSt {
			t.Fatalf("p=%d: stats %+v, want %+v", p, st, wantSt)
		}
		if !reflect.DeepEqual(evs, wantEvs) {
			t.Fatalf("p=%d: events diverge (%d vs %d)", p, len(evs), len(wantEvs))
		}
	}
}

// TestShardedTinyInputs exercises the small-input fallbacks.
func TestShardedTinyInputs(t *testing.T) {
	for n := 0; n < 5; n++ {
		recs := randomFatalStream(11, n)
		want := Temporal(5*time.Minute, recs)
		got := temporalSharded(8, 5*time.Minute, recs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: diverge", n)
		}
	}
}
