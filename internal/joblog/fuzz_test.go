package joblog

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// saneEpochRange bounds the timestamps for which we demand a perfectly
// stable round trip. Cobalt epoch timestamps are fractional seconds in
// a float64; inputs like 1e300 or NaN lose integer-nanosecond precision
// by construction, so for those the parser must merely not panic and
// must keep accepting its own output.
var epochLo = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
var epochHi = time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC)

func saneEpoch(t time.Time) bool { return t.After(epochLo) && t.Before(epochHi) }

// FuzzParseJob drives UnmarshalLine with arbitrary job-log lines:
// malformed input must error (never panic), accepted input must
// re-marshal to a line that parses again, and for timestamps in the
// representable range the reparsed job must equal the first parse.
func FuzzParseJob(f *testing.F) {
	// Seed corpus from the round-trip fixtures.
	start := time.Date(2008, 5, 1, 0, 0, 43, 0, time.UTC)
	j := Job{
		ID: 8935, Name: "N.A.", ExecFile: "/home/u/app.exe",
		QueueTime: start.Add(-52 * time.Minute), StartTime: start, EndTime: start.Add(time.Hour),
		Partition: bgp.Partition{Start: 16, Size: 4},
		User:      "alice", Project: "climate",
	}
	f.Add(j.MarshalLine())
	f.Add(mkJob(1, "/bin/x", start, start.Add(time.Minute), bgp.Partition{Start: 0, Size: 1}).MarshalLine())
	wide := mkJob(2, `we|ird\exec`, start, start.Add(time.Hour), bgp.Partition{Start: 0, Size: 80})
	f.Add(wide.MarshalLine())
	f.Add("")
	f.Add("1|n|e|0|0|0|R00-M0|u") // 8 fields
	f.Add("x|n|e|0|0|0|R00-M0|u|p")
	f.Add("1|n|e|zero|0|0|R00-M0|u|p")
	f.Add("1|n|e|0|0|0|R99-M9|u|p")
	f.Add("1|n|e|0|0|0|R00-M0..R00-M0|u|p")
	f.Add("1|n|e|0|0|0|R00-R03|u|p")
	f.Add("1|n|e|NaN|+Inf|-Inf|R00-M0|u|p")
	f.Add("1|n|e|1e300|0|0|R00-M0|u|p")
	f.Add(strings.Repeat("|", 8))

	f.Fuzz(func(t *testing.T, line string) {
		j, err := UnmarshalLine(line)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		line2 := j.MarshalLine()
		j2, err := UnmarshalLine(line2)
		if err != nil {
			t.Fatalf("re-parse of own marshaling failed: %v\ninput: %q\nmarshaled: %q", err, line, line2)
		}
		if !saneEpoch(j.QueueTime) || !saneEpoch(j.StartTime) || !saneEpoch(j.EndTime) {
			return // degenerate timestamps only guarantee re-acceptance
		}
		// Epoch serialization quantizes to 10ms, so the first
		// normalization may shave sub-quantum digits; everything else
		// must survive exactly.
		const quantum = 10 * time.Millisecond
		for _, d := range []time.Duration{
			j2.QueueTime.Sub(j.QueueTime), j2.StartTime.Sub(j.StartTime), j2.EndTime.Sub(j.EndTime),
		} {
			if d > quantum || d < -quantum {
				t.Fatalf("timestamp drift %v beyond the 10ms quantum:\ninput: %q", d, line)
			}
		}
		j.QueueTime, j.StartTime, j.EndTime = j2.QueueTime, j2.StartTime, j2.EndTime
		if j2 != j {
			t.Fatalf("non-timestamp field changed in round trip:\ninput: %q\nfirst: %+v\nsecond: %+v", line, j, j2)
		}
		// After one normalization the line must be a fixed point.
		line3 := j2.MarshalLine()
		if line3 != line2 {
			t.Fatalf("marshaling not a fixed point:\nfirst:  %q\nsecond: %q", line2, line3)
		}
	})
}
