package joblog

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
)

func mkJob(id int64, exec string, start, end time.Time, p bgp.Partition) Job {
	return Job{
		ID: id, Name: "N.A.", ExecFile: exec,
		QueueTime: start.Add(-10 * time.Minute), StartTime: start, EndTime: end,
		Partition: p, User: "u1", Project: "p1",
	}
}

func TestJobRoundTrip(t *testing.T) {
	start := time.Date(2008, 5, 1, 0, 0, 43, 0, time.UTC)
	j := Job{
		ID: 8935, Name: "N.A.", ExecFile: "/home/u/app.exe",
		QueueTime: start.Add(-52 * time.Minute),
		StartTime: start,
		EndTime:   start.Add(time.Hour),
		Partition: bgp.Partition{Start: 16, Size: 4}, // R10-R11
		User:      "alice", Project: "climate",
	}
	got, err := UnmarshalLine(j.MarshalLine())
	if err != nil {
		t.Fatalf("UnmarshalLine: %v", err)
	}
	if got.ID != j.ID || got.ExecFile != j.ExecFile || got.Partition != j.Partition ||
		got.User != j.User || got.Project != j.Project {
		t.Errorf("round trip mismatch: %+v vs %+v", got, j)
	}
	// Epoch serialization keeps 10ms accuracy.
	if d := got.StartTime.Sub(j.StartTime); d > 20*time.Millisecond || d < -20*time.Millisecond {
		t.Errorf("StartTime drift %v", d)
	}
}

func TestJobRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := bgp.PartitionSizes[rng.Intn(len(bgp.PartitionSizes))]
		align := size
		if size == 48 || size == 80 {
			align = 16
		}
		nStarts := (bgp.NumMidplanes-size)/align + 1
		start := time.Unix(rng.Int63n(2e9), 0).UTC()
		j := Job{
			ID: rng.Int63n(1e9), Name: "n", ExecFile: "/x/y|z.exe",
			QueueTime: start.Add(-time.Hour), StartTime: start,
			EndTime:   start.Add(time.Duration(rng.Int63n(3600*24)) * time.Second),
			Partition: bgp.Partition{Start: align * rng.Intn(nStarts), Size: size},
			User:      "u", Project: "p",
		}
		got, err := UnmarshalLine(j.MarshalLine())
		if err != nil {
			return false
		}
		return got.ID == j.ID && got.ExecFile == j.ExecFile && got.Partition == j.Partition
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalLineErrors(t *testing.T) {
	bad := []string{
		"",
		"1|2|3",
		"x|n|e|0|0|0|R00-M0|u|p",
		"1|n|e|zzz|0|0|R00-M0|u|p",
		"1|n|e|0|0|0|R99-M9|u|p",
	}
	for _, line := range bad {
		if _, err := UnmarshalLine(line); err == nil {
			t.Errorf("UnmarshalLine(%q): want error", line)
		}
	}
}

func TestWriterReader(t *testing.T) {
	t0 := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	jobs := []Job{
		mkJob(1, "/a", t0, t0.Add(time.Hour), bgp.Partition{Start: 0, Size: 1}),
		mkJob(2, "/b", t0, t0.Add(2*time.Hour), bgp.Partition{Start: 8, Size: 8}),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, j := range jobs {
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].Partition.Size != 8 {
		t.Errorf("ReadAll = %+v", got)
	}
}

func TestJobPredicates(t *testing.T) {
	t0 := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	j := mkJob(1, "/a", t0, t0.Add(time.Hour), bgp.Partition{Start: 4, Size: 4})
	if j.Runtime() != time.Hour {
		t.Errorf("Runtime = %v", j.Runtime())
	}
	if j.WaitTime() != 10*time.Minute {
		t.Errorf("WaitTime = %v", j.WaitTime())
	}
	if j.Size() != 4 {
		t.Errorf("Size = %d", j.Size())
	}
	if !j.RunningAt(t0) || !j.RunningAt(t0.Add(30*time.Minute)) || j.RunningAt(t0.Add(time.Hour)) || j.RunningAt(t0.Add(-time.Second)) {
		t.Error("RunningAt boundaries wrong")
	}
	if !j.OnMidplane(4) || !j.OnMidplane(7) || j.OnMidplane(8) || j.OnMidplane(3) {
		t.Error("OnMidplane boundaries wrong")
	}
}

func TestLogQueries(t *testing.T) {
	t0 := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	jobs := []Job{
		mkJob(3, "/a", t0.Add(2*time.Hour), t0.Add(3*time.Hour), bgp.Partition{Start: 0, Size: 1}),
		mkJob(1, "/a", t0, t0.Add(time.Hour), bgp.Partition{Start: 0, Size: 1}),
		mkJob(2, "/b", t0, t0.Add(2*time.Hour), bgp.Partition{Start: 2, Size: 2}),
	}
	l := NewLog(jobs)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	all := l.All()
	for i := 1; i < len(all); i++ {
		if all[i].EndTime.Before(all[i-1].EndTime) {
			t.Fatal("log not EndTime-ordered")
		}
	}
	d, r := l.DistinctExecutables()
	if d != 2 || r != 1 {
		t.Errorf("DistinctExecutables = %d,%d want 2,1", d, r)
	}
	run := l.RunningAt(t0.Add(30 * time.Minute))
	if len(run) != 2 {
		t.Errorf("RunningAt = %d jobs, want 2", len(run))
	}
	on := l.RunningOn(t0.Add(30*time.Minute), 2)
	if len(on) != 1 || on[0].ID != 2 {
		t.Errorf("RunningOn = %+v", on)
	}
	busy := l.MidplaneBusySeconds(0)
	if busy[0] != 7200 { // two 1-hour jobs on midplane 0
		t.Errorf("busy[0] = %v, want 7200", busy[0])
	}
	if busy[2] != 7200 || busy[3] != 7200 {
		t.Errorf("busy[2,3] = %v,%v want 7200", busy[2], busy[3])
	}
	wide := l.MidplaneBusySeconds(2)
	if wide[0] != 0 || wide[2] != 7200 {
		t.Errorf("wide busy = %v,%v", wide[0], wide[2])
	}
	first, last := l.Span()
	if !first.Equal(t0.Add(-10*time.Minute)) || !last.Equal(t0.Add(3*time.Hour)) {
		t.Errorf("Span = %v..%v", first, last)
	}
	groups := l.ByExecFile()
	if len(groups["/a"]) != 2 || !groups["/a"][0].StartTime.Before(groups["/a"][1].StartTime) {
		t.Errorf("ByExecFile grouping wrong: %+v", groups["/a"])
	}
}

func TestLogSpanEmpty(t *testing.T) {
	l := NewLog(nil)
	first, last := l.Span()
	if !first.IsZero() || !last.IsZero() {
		t.Error("empty Span should be zero")
	}
}
