package joblog

// Legacy-compat tests for the zero-allocation job codec. The legacy*
// functions are the pre-streaming implementation kept verbatim as the
// oracle: AppendLine must emit the bytes legacyMarshalLine did, and
// UnmarshalFields must agree with legacyUnmarshalLine on both accepted
// records and error text.

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/linescan"
)

func legacyEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, fieldSep, `\p`)
}

func legacyUnescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			if s[i+1] == 'p' {
				b.WriteString(fieldSep)
			} else {
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func legacyMarshalLine(j Job) string {
	fields := []string{
		strconv.FormatInt(j.ID, 10),
		legacyEscape(j.Name),
		legacyEscape(j.ExecFile),
		epoch(j.QueueTime),
		epoch(j.StartTime),
		epoch(j.EndTime),
		j.Partition.String(),
		legacyEscape(j.User),
		legacyEscape(j.Project),
	}
	return strings.Join(fields, fieldSep)
}

func legacyUnmarshalLine(line string) (Job, error) {
	parts := strings.Split(line, fieldSep)
	if len(parts) != numFields {
		return Job{}, fmt.Errorf("%w: %d fields, want %d", ErrBadJob, len(parts), numFields)
	}
	var j Job
	id, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Job{}, fmt.Errorf("%w: id %q", ErrBadJob, parts[0])
	}
	j.ID = id
	j.Name = legacyUnescape(parts[1])
	j.ExecFile = legacyUnescape(parts[2])
	if j.QueueTime, err = parseEpoch(parts[3]); err != nil {
		return Job{}, fmt.Errorf("%w: queue time %q", ErrBadJob, parts[3])
	}
	if j.StartTime, err = parseEpoch(parts[4]); err != nil {
		return Job{}, fmt.Errorf("%w: start time %q", ErrBadJob, parts[4])
	}
	if j.EndTime, err = parseEpoch(parts[5]); err != nil {
		return Job{}, fmt.Errorf("%w: end time %q", ErrBadJob, parts[5])
	}
	if j.Partition, err = bgp.ParsePartition(parts[6]); err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	j.User = legacyUnescape(parts[7])
	j.Project = legacyUnescape(parts[8])
	return j, nil
}

func randomJob(rng *rand.Rand) Job {
	texts := []string{"", "N.A.", "turbulence3d", "/home/u/a.out", `p\q`, "na|me", "intrepid-esp"}
	pick := func() string { return texts[rng.Intn(len(texts))] }
	at := func() time.Time {
		return time.Unix(1200000000+rng.Int63n(1e8), rng.Int63n(100)*1e7).UTC()
	}
	start := rng.Intn(bgp.NumMidplanes - 2)
	return Job{
		ID:        rng.Int63n(1 << 32),
		Name:      pick(),
		ExecFile:  pick(),
		QueueTime: at(),
		StartTime: at(),
		EndTime:   at(),
		Partition: bgp.Partition{Start: start, Size: 1 + rng.Intn(2)},
		User:      pick(),
		Project:   pick(),
	}
}

func jobCorpus() []string {
	rng := rand.New(rand.NewSource(2))
	lines := []string{
		"0|||1|.001|1|R00||", // the checked-in fuzz corpus entry
		"",
		"1|n|e|1|2|3|R00|u",                       // 8 fields
		"x|n|e|1|2|3|R00|u|p",                     // bad id
		"1|n|e|oops|2|3|R00|u|p",                  // bad queue time
		"1|n|e|1|2|3|nowhere|u|p",                 // bad partition
		"5|a\\pb|c\\\\d|1.5|2.25|3|R01|u|p",       // escapes
		"7|n|e|1e3|+4.|-0.00|R02|u|p",             // exotic epochs
		"8|n|e|999999999999999999999|2|3|R03|u|p", // epoch beyond the fast path
	}
	for i := 0; i < 300; i++ {
		lines = append(lines, legacyMarshalLine(randomJob(rng)))
	}
	return lines
}

// TestJobAppendLineMatchesLegacyMarshal is the satellite property test
// on the job side: AppendLine output byte-identical to the old
// MarshalLine.
func TestJobAppendLineMatchesLegacyMarshal(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJob(rand.New(rand.NewSource(seed)))
		return string(j.AppendLine(nil)) == legacyMarshalLine(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJobUnmarshalFieldsMatchesLegacy(t *testing.T) {
	for _, line := range jobCorpus() {
		want, wantErr := legacyUnmarshalLine(line)
		var got Job
		gotErr := got.UnmarshalFields([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("UnmarshalFields(%q) err=%v, legacy err=%v", line, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("UnmarshalFields(%q) error %q, legacy %q", line, gotErr, wantErr)
			}
			continue
		}
		if got != want {
			t.Errorf("UnmarshalFields(%q):\n got %+v\nwant %+v", line, got, want)
		}
	}
}

// TestEpochFastPathMatchesParseFloat pins the bit-exactness claim of
// parseEpochBytes: wherever the fast path engages it must produce the
// same instant strconv.ParseFloat does.
func TestEpochFastPathMatchesParseFloat(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+1", "1.", ".001", "0.01", "-0.00",
		"1207804800.00", "1217621999.99", "999999999999999",
		"123456.789012345",
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		// ≤ 9 integer digits + ≤ 6 fractional digits stays inside the
		// 15-digit fast-path window.
		cases = append(cases, strconv.FormatFloat(rng.Float64()*math.Pow10(rng.Intn(9)), 'f', rng.Intn(7), 64))
	}
	for _, s := range cases {
		got, ok, err := parseEpochBytes([]byte(s))
		if err != nil || !ok {
			t.Fatalf("fast path declined %q (ok=%v err=%v)", s, ok, err)
		}
		want, perr := parseEpoch(s)
		if perr != nil {
			t.Fatalf("parseEpoch(%q): %v", s, perr)
		}
		if !got.Equal(want) || got.Nanosecond() != want.Nanosecond() {
			t.Errorf("parseEpochBytes(%q) = %v, ParseFloat path %v", s, got, want)
		}
	}
}

func TestJobParallelDecodeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var b strings.Builder
	for i := 0; i < 800; i++ {
		b.WriteString(legacyMarshalLine(randomJob(rng)))
		b.WriteString("\n")
		if i%19 == 0 {
			b.WriteString("\n")
		}
	}
	inputs := map[string]string{
		"clean":     b.String(),
		"mid-error": b.String()[:len(b.String())/3] + "bad job line\n" + b.String(),
	}
	for name, in := range inputs {
		want, wantErr := NewReader(strings.NewReader(in)).ReadAll()
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := ReadAllParallel(strings.NewReader(in), workers)
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Fatalf("%s w=%d: err %v, want %v", name, workers, err, wantErr)
			}
			if len(got) != len(want) {
				t.Fatalf("%s w=%d: %d jobs, want %d", name, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s w=%d: job %d differs:\n got %+v\nwant %+v", name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestJobReaderTooLongLine is the over-cap regression test on the job
// side: the error must name the line instead of truncating the read.
func TestJobReaderTooLongLine(t *testing.T) {
	good := legacyMarshalLine(randomJob(rand.New(rand.NewSource(1))))
	in := good + "\n" + strings.Repeat("z", linescan.MaxLineBytes+1)
	r := NewReader(strings.NewReader(in))
	n := 0
	for r.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("decoded %d jobs before the long line, want 1", n)
	}
	if err := r.Err(); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("want bufio.ErrTooLong, got %v", err)
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2: %v", err)
	}
}

func BenchmarkJobUnmarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var sb strings.Builder
	const n = 4096
	for i := 0; i < n; i++ {
		sb.WriteString(legacyMarshalLine(randomJob(rng)))
		sb.WriteString("\n")
	}
	in := sb.String()
	b.SetBytes(int64(len(in) / n))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(strings.NewReader(in))
	for i := 0; i < b.N; i++ {
		if !r.Next() {
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			r = NewReader(strings.NewReader(in))
			b.StartTimer()
			if !r.Next() {
				b.Fatal(r.Err())
			}
		}
	}
}

func BenchmarkJobUnmarshalLegacy(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var sb strings.Builder
	const n = 4096
	for i := 0; i < n; i++ {
		sb.WriteString(legacyMarshalLine(randomJob(rng)))
		sb.WriteString("\n")
	}
	in := sb.String()
	b.SetBytes(int64(len(in) / n))
	b.ReportAllocs()
	b.ResetTimer()
	s := bufio.NewScanner(strings.NewReader(in))
	for i := 0; i < b.N; i++ {
		if !s.Scan() {
			b.StopTimer()
			s = bufio.NewScanner(strings.NewReader(in))
			b.StartTimer()
			if !s.Scan() {
				b.Fatal("empty corpus")
			}
		}
		if _, err := legacyUnmarshalLine(s.Text()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobMarshal(b *testing.B) {
	j := randomJob(rand.New(rand.NewSource(8)))
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = j.AppendLine(buf[:0])
	}
	_ = buf
}
