// Package joblog models the system-wide job log collected by the Cobalt
// scheduler on Intrepid: the per-job record schema (Table III of the
// paper), a line-oriented serialization with Cobalt-style epoch
// timestamps, and an in-memory log with the query operations the
// co-analysis pipeline needs.
package joblog

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/bgp"
	"repro/internal/linescan"
	"repro/internal/tailio"
)

// Job is one job record. A job is "distinct" from another iff its
// ExecFile differs; the paper treats resubmissions of the same
// executable as one distinct job.
type Job struct {
	// ID is the scheduler-assigned job sequence number.
	ID int64
	// Name is the user-visible job name ("N.A." when withheld).
	Name string
	// ExecFile is the path of the job executable; the distinct-job key.
	ExecFile string
	// QueueTime is when the job entered the wait queue.
	QueueTime time.Time
	// StartTime is when the job began running on its partition (after
	// the partition reboot that Blue Gene/P performs before execution).
	StartTime time.Time
	// EndTime is when the job exited — finished or interrupted.
	EndTime time.Time
	// Partition is the set of midplanes the job ran on.
	Partition bgp.Partition
	// User is the submitting user ("N.A." when withheld).
	User string
	// Project is the charging project ("N.A." when withheld).
	Project string
}

// Runtime returns the job's execution time (EndTime - StartTime).
func (j Job) Runtime() time.Duration { return j.EndTime.Sub(j.StartTime) }

// WaitTime returns the queueing delay (StartTime - QueueTime).
func (j Job) WaitTime() time.Duration { return j.StartTime.Sub(j.QueueTime) }

// Size returns the job's width in midplanes.
func (j Job) Size() int { return j.Partition.Size }

// RunningAt reports whether the job was executing at time t
// (StartTime <= t < EndTime).
func (j Job) RunningAt(t time.Time) bool {
	return !t.Before(j.StartTime) && t.Before(j.EndTime)
}

// OnMidplane reports whether the job's partition contains global
// midplane mp.
func (j Job) OnMidplane(mp int) bool { return j.Partition.Contains(mp) }

// epoch renders a time as Cobalt-style fractional epoch seconds.
func epoch(t time.Time) string {
	sec := float64(t.UnixNano()) / 1e9
	return strconv.FormatFloat(sec, 'f', 2, 64)
}

// appendEpoch is the append-style twin of epoch; strconv.AppendFloat
// emits the same bytes FormatFloat does.
func appendEpoch(dst []byte, t time.Time) []byte {
	sec := float64(t.UnixNano()) / 1e9
	return strconv.AppendFloat(dst, sec, 'f', 2, 64)
}

// epochToTime converts parsed fractional epoch seconds to a time the
// way the original parser did (Modf + rounded nanoseconds).
func epochToTime(f float64) time.Time {
	sec, frac := math.Modf(f)
	return time.Unix(int64(sec), int64(math.Round(frac*1e9))).UTC()
}

func parseEpoch(s string) (time.Time, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, err
	}
	return epochToTime(f), nil
}

// parseEpochBytes parses Cobalt-style epoch seconds without allocating.
// The fast path covers plain fixed-point decimals ([+-]digits[.digits])
// whose value fits 53 bits of integer precision: there the quotient
// num/10^fd is a single correctly-rounded division, bit-identical to
// strconv.ParseFloat. Everything else (exponents, Inf/NaN spellings,
// >15-digit mantissas) falls back to ParseFloat on a transient string.
func parseEpochBytes(b []byte) (time.Time, bool, error) {
	i, neg := 0, false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	var num uint64
	digits, fracDigits := 0, 0
	seenDot := false
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			if seenDot {
				return time.Time{}, false, nil // second dot: let ParseFloat reject
			}
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			return time.Time{}, false, nil // exponents etc.: fall back
		}
		num = num*10 + uint64(c-'0')
		digits++
		if seenDot {
			fracDigits++
		}
		if digits > 15 {
			return time.Time{}, false, nil // may need >53-bit precision
		}
	}
	if digits == 0 {
		return time.Time{}, false, nil // "", ".", "+": fall back (and fail)
	}
	f := float64(num) / float64(pow10[fracDigits])
	if neg {
		f = -f
	}
	return epochToTime(f), true, nil
}

var pow10 = [16]uint64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

const numFields = 9

const fieldSep = "|"

// appendEscaped appends s with the job-log field escaping: backslash
// doubled, '|' as `\p`. (Unlike raslog, the historical job codec never
// escaped newlines; we preserve its exact byte behavior.)
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '|':
			dst = append(dst, '\\', 'p')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func escape(s string) string {
	return string(appendEscaped(make([]byte, 0, len(s)), s))
}

// unescapeInto decodes the field escaping of b into dst (reused as
// scratch), mirroring the historical decoder: `\p` is '|', any other
// escaped byte stands for itself, a trailing lone backslash survives.
func unescapeInto(dst, b []byte) []byte {
	dst = dst[:0]
	for i := 0; i < len(b); i++ {
		if b[i] == '\\' && i+1 < len(b) {
			if b[i+1] == 'p' {
				dst = append(dst, '|')
			} else {
				dst = append(dst, b[i+1])
			}
			i++
			continue
		}
		dst = append(dst, b[i])
	}
	return dst
}

// intern deduplicates retained field strings across a decode stream;
// job logs repeat users, projects and executables heavily. Bounded so
// adversarial input degrades to plain allocation.
type intern struct {
	m map[string]string
}

const (
	internMaxEntries  = 1 << 15
	internMaxValueLen = 512
)

func newIntern() *intern { return &intern{m: make(map[string]string, 256)} }

func (it *intern) str(b []byte) string {
	if it == nil || len(b) > internMaxValueLen {
		return string(b)
	}
	if s, ok := it.m[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(it.m) < internMaxEntries {
		it.m[s] = s
	}
	return s
}

// decoder is the per-stream reusable state: unescape scratch, the
// intern table, and a partition cache (jobs draw from a small set of
// partition shapes, so each distinct spelling parses once).
type decoder struct {
	buf   []byte
	it    *intern
	parts map[string]bgp.Partition
}

func newDecoder() *decoder {
	return &decoder{it: newIntern(), parts: make(map[string]bgp.Partition, 64)}
}

func (d *decoder) str(b []byte) string {
	if bytes.IndexByte(b, '\\') < 0 {
		return d.it.str(b)
	}
	d.buf = unescapeInto(d.buf, b)
	return d.it.str(d.buf)
}

func (d *decoder) partition(b []byte) (bgp.Partition, error) {
	if p, ok := d.parts[string(b)]; ok { // no-alloc map probe
		return p, nil
	}
	p, err := bgp.ParsePartition(string(b))
	if err != nil {
		return bgp.Partition{}, err
	}
	if d.parts != nil && len(d.parts) < internMaxEntries {
		d.parts[string(b)] = p
	}
	return p, nil
}

// AppendLine appends the job's one-line serialization to dst and
// returns the extended buffer; the output is byte-identical to
// MarshalLine.
func (j *Job) AppendLine(dst []byte) []byte {
	dst = strconv.AppendInt(dst, j.ID, 10)
	dst = append(dst, '|')
	dst = appendEscaped(dst, j.Name)
	dst = append(dst, '|')
	dst = appendEscaped(dst, j.ExecFile)
	dst = append(dst, '|')
	dst = appendEpoch(dst, j.QueueTime)
	dst = append(dst, '|')
	dst = appendEpoch(dst, j.StartTime)
	dst = append(dst, '|')
	dst = appendEpoch(dst, j.EndTime)
	dst = append(dst, '|')
	dst = append(dst, j.Partition.String()...)
	dst = append(dst, '|')
	dst = appendEscaped(dst, j.User)
	dst = append(dst, '|')
	dst = appendEscaped(dst, j.Project)
	return dst
}

// MarshalLine renders the job as one line of the log file.
func (j Job) MarshalLine() string {
	return string(j.AppendLine(make([]byte, 0, 128)))
}

// ErrBadJob reports an unparseable job log line.
var ErrBadJob = errors.New("joblog: bad job line")

// UnmarshalFields parses one line of the job log into j with an
// index-based field scanner over the raw bytes: no field slice, no
// per-field conversions except the retained strings. The streaming
// Reader amortizes those through its intern table.
func (j *Job) UnmarshalFields(line []byte) error {
	return j.unmarshalFields(line, &decoder{})
}

// parseIDBytes matches strconv.ParseInt(s, 10, 64) acceptance exactly:
// optional sign, all digits, overflow rejected.
func parseIDBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if len(b) == 1 {
			return 0, false
		}
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n > (1<<63)/10 {
			return 0, false
		}
		n = n*10 + uint64(c)
		if neg && n > 1<<63 {
			return 0, false
		}
		if !neg && n > 1<<63-1 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

func (j *Job) unmarshalFields(line []byte, d *decoder) error {
	var f [numFields][]byte
	n := 0
	rest := line
	for {
		i := bytes.IndexByte(rest, '|')
		if i < 0 {
			if n < numFields {
				f[n] = rest
			}
			n++
			break
		}
		if n < numFields {
			f[n] = rest[:i]
		}
		n++
		rest = rest[i+1:]
	}
	if n != numFields {
		return fmt.Errorf("%w: %d fields, want %d", ErrBadJob, n, numFields)
	}
	id, ok := parseIDBytes(f[0])
	if !ok {
		return fmt.Errorf("%w: id %q", ErrBadJob, f[0])
	}
	qt, err := parseEpochField(f[3])
	if err != nil {
		return fmt.Errorf("%w: queue time %q", ErrBadJob, f[3])
	}
	st, err := parseEpochField(f[4])
	if err != nil {
		return fmt.Errorf("%w: start time %q", ErrBadJob, f[4])
	}
	et, err := parseEpochField(f[5])
	if err != nil {
		return fmt.Errorf("%w: end time %q", ErrBadJob, f[5])
	}
	part, err := d.partition(f[6])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	j.ID = id
	j.QueueTime = qt
	j.StartTime = st
	j.EndTime = et
	j.Partition = part
	j.Name = d.str(f[1])
	j.ExecFile = d.str(f[2])
	j.User = d.str(f[7])
	j.Project = d.str(f[8])
	return nil
}

func parseEpochField(b []byte) (time.Time, error) {
	t, ok, err := parseEpochBytes(b)
	if !ok && err == nil {
		// The fast path is exact for well-formed fields; delegate
		// near-misses (and their string conversion) to the slow parser.
		return parseEpoch(string(b))
	}
	return t, err
}

// UnmarshalLine parses one line of the job log.
func UnmarshalLine(line string) (Job, error) {
	var j Job
	if err := j.UnmarshalFields([]byte(line)); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Writer streams jobs to an underlying io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one job record; errors are sticky.
func (w *Writer) Write(j Job) error {
	if w.err != nil {
		return w.err
	}
	w.buf = j.AppendLine(w.buf[:0])
	w.buf = append(w.buf, '\n')
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of jobs written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams jobs from an underlying io.Reader. The idiomatic loop
// mirrors raslog.Reader:
//
//	r := joblog.NewReader(f)
//	for r.Next() {
//	    use(r.Job()) // valid until the next call to Next
//	}
//	if err := r.Err(); err != nil { ... }
type Reader struct {
	s    *bufio.Scanner
	line int
	job  Job
	dec  *decoder
	err  error
	done bool
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), linescan.MaxLineBytes)
	return &Reader{s: s, dec: newDecoder()}
}

// NewTailReader returns a Reader that follows a growing log: at end of
// input it polls for more bytes (every poll interval; non-positive
// means tailio.DefaultPoll) instead of stopping, until ctx is
// cancelled — then it drains what is already readable and ends
// cleanly. The decode path is identical to NewReader's.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *Reader {
	return NewReader(tailio.NewReader(ctx, r, poll))
}

// Next advances to the next job, skipping blank lines. It returns false
// at end of input or on the first error; Err distinguishes the two.
func (r *Reader) Next() bool {
	if r.done {
		return false
	}
	for r.s.Scan() {
		r.line++
		line := r.s.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := r.job.unmarshalFields(line, r.dec); err != nil {
			r.err = fmt.Errorf("line %d: %w", r.line, err)
			r.done = true
			return false
		}
		return true
	}
	r.done = true
	if err := r.s.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stalls at the over-long line without consuming
			// it; the offending line is the one after the last good one.
			err = linescan.TooLongError(r.line + 1)
		}
		r.err = err
	}
	return false
}

// Job returns the current job. The pointee is reused by Next; copy the
// Job (its field strings are immutable and shared) to retain it.
func (r *Reader) Job() *Job { return &r.job }

// Err returns the first error encountered, if any. It never returns
// io.EOF.
func (r *Reader) Err() error { return r.err }

// Line returns the 1-based line number of the current job.
func (r *Reader) Line() int { return r.line }

// Read returns the next job, or io.EOF at end of input. It is the
// pre-streaming API, kept as a thin wrapper over Next.
func (r *Reader) Read() (Job, error) {
	if r.Next() {
		return r.job, nil
	}
	if err := r.Err(); err != nil {
		return Job{}, err
	}
	return Job{}, io.EOF
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Job, error) {
	var out []Job
	for r.Next() {
		out = append(out, r.job)
	}
	return out, r.Err()
}

// ReadAllParallel decodes a job log stream with workers parallel shards
// (0 = GOMAXPROCS, 1 = sequential), merging in chunk order; results and
// errors are identical to ReadAll on the same input for any worker
// count.
func ReadAllParallel(r io.Reader, workers int) ([]Job, error) {
	return linescan.DecodeAll(r, linescan.Options{Workers: workers}, func() linescan.ShardFunc[Job] {
		dec := newDecoder()
		return func(chunk []byte, firstLine int) ([]Job, error) {
			var out []Job
			err := linescan.ForEachLine(chunk, firstLine, func(line []byte, n int) error {
				if len(line) == 0 {
					return nil
				}
				var j Job
				if err := j.unmarshalFields(line, dec); err != nil {
					return fmt.Errorf("line %d: %w", n, err)
				}
				out = append(out, j)
				return nil
			})
			return out, err
		}
	})
}

// Log is an in-memory job log ordered by EndTime, with the aggregate
// queries the co-analysis needs.
type Log struct {
	jobs []Job
}

// NewLog returns a log over jobs ordered by (EndTime, ID).
func NewLog(jobs []Job) *Log {
	l := &Log{jobs: append([]Job(nil), jobs...)}
	sort.SliceStable(l.jobs, func(i, j int) bool {
		if !l.jobs[i].EndTime.Equal(l.jobs[j].EndTime) {
			return l.jobs[i].EndTime.Before(l.jobs[j].EndTime)
		}
		return l.jobs[i].ID < l.jobs[j].ID
	})
	return l
}

// Len returns the number of jobs.
func (l *Log) Len() int { return len(l.jobs) }

// All returns the jobs ordered by EndTime (shared slice; callers must
// not mutate).
func (l *Log) All() []Job { return l.jobs }

// DistinctExecutables returns the number of distinct ExecFiles and the
// number of ExecFiles submitted more than once.
func (l *Log) DistinctExecutables() (distinct, resubmitted int) {
	count := make(map[string]int)
	for _, j := range l.jobs {
		count[j.ExecFile]++
	}
	for _, n := range count {
		if n > 1 {
			resubmitted++
		}
	}
	return len(count), resubmitted
}

// RunningAt returns the jobs executing at time t.
func (l *Log) RunningAt(t time.Time) []Job {
	var out []Job
	for _, j := range l.jobs {
		if j.RunningAt(t) {
			out = append(out, j)
		}
	}
	return out
}

// RunningOn returns the jobs executing at time t whose partition
// contains midplane mp.
func (l *Log) RunningOn(t time.Time, mp int) []Job {
	var out []Job
	for _, j := range l.jobs {
		if j.RunningAt(t) && j.OnMidplane(mp) {
			out = append(out, j)
		}
	}
	return out
}

// MidplaneBusySeconds returns, per global midplane, the total seconds
// the midplane spent allocated to jobs — the "workload" of Figure 4b.
// If minSize > 0, only jobs at least that wide contribute (Figure 4c
// uses wide jobs only).
func (l *Log) MidplaneBusySeconds(minSize int) [bgp.NumMidplanes]float64 {
	var out [bgp.NumMidplanes]float64
	for _, j := range l.jobs {
		if j.Size() < minSize {
			continue
		}
		sec := j.Runtime().Seconds()
		if sec < 0 {
			continue
		}
		for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
			out[mp] += sec
		}
	}
	return out
}

// Span returns the earliest QueueTime and the latest EndTime.
func (l *Log) Span() (first, last time.Time) {
	if len(l.jobs) == 0 {
		return
	}
	first = l.jobs[0].QueueTime
	for _, j := range l.jobs {
		if j.QueueTime.Before(first) {
			first = j.QueueTime
		}
	}
	return first, l.jobs[len(l.jobs)-1].EndTime
}

// ByExecFile groups job indices by executable, each group ordered by
// StartTime; used by resubmission analyses.
func (l *Log) ByExecFile() map[string][]Job {
	m := make(map[string][]Job)
	for _, j := range l.jobs {
		m[j.ExecFile] = append(m[j.ExecFile], j)
	}
	for _, js := range m {
		sort.Slice(js, func(a, b int) bool { return js[a].StartTime.Before(js[b].StartTime) })
	}
	return m
}
