// Package joblog models the system-wide job log collected by the Cobalt
// scheduler on Intrepid: the per-job record schema (Table III of the
// paper), a line-oriented serialization with Cobalt-style epoch
// timestamps, and an in-memory log with the query operations the
// co-analysis pipeline needs.
package joblog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bgp"
)

// Job is one job record. A job is "distinct" from another iff its
// ExecFile differs; the paper treats resubmissions of the same
// executable as one distinct job.
type Job struct {
	// ID is the scheduler-assigned job sequence number.
	ID int64
	// Name is the user-visible job name ("N.A." when withheld).
	Name string
	// ExecFile is the path of the job executable; the distinct-job key.
	ExecFile string
	// QueueTime is when the job entered the wait queue.
	QueueTime time.Time
	// StartTime is when the job began running on its partition (after
	// the partition reboot that Blue Gene/P performs before execution).
	StartTime time.Time
	// EndTime is when the job exited — finished or interrupted.
	EndTime time.Time
	// Partition is the set of midplanes the job ran on.
	Partition bgp.Partition
	// User is the submitting user ("N.A." when withheld).
	User string
	// Project is the charging project ("N.A." when withheld).
	Project string
}

// Runtime returns the job's execution time (EndTime - StartTime).
func (j Job) Runtime() time.Duration { return j.EndTime.Sub(j.StartTime) }

// WaitTime returns the queueing delay (StartTime - QueueTime).
func (j Job) WaitTime() time.Duration { return j.StartTime.Sub(j.QueueTime) }

// Size returns the job's width in midplanes.
func (j Job) Size() int { return j.Partition.Size }

// RunningAt reports whether the job was executing at time t
// (StartTime <= t < EndTime).
func (j Job) RunningAt(t time.Time) bool {
	return !t.Before(j.StartTime) && t.Before(j.EndTime)
}

// OnMidplane reports whether the job's partition contains global
// midplane mp.
func (j Job) OnMidplane(mp int) bool { return j.Partition.Contains(mp) }

// epoch renders a time as Cobalt-style fractional epoch seconds.
func epoch(t time.Time) string {
	sec := float64(t.UnixNano()) / 1e9
	return strconv.FormatFloat(sec, 'f', 2, 64)
}

func parseEpoch(s string) (time.Time, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, err
	}
	sec, frac := math.Modf(f)
	return time.Unix(int64(sec), int64(math.Round(frac*1e9))).UTC(), nil
}

const numFields = 9

const fieldSep = "|"

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, fieldSep, `\p`)
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			if s[i+1] == 'p' {
				b.WriteString(fieldSep)
			} else {
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// MarshalLine renders the job as one line of the log file.
func (j Job) MarshalLine() string {
	fields := []string{
		strconv.FormatInt(j.ID, 10),
		escape(j.Name),
		escape(j.ExecFile),
		epoch(j.QueueTime),
		epoch(j.StartTime),
		epoch(j.EndTime),
		j.Partition.String(),
		escape(j.User),
		escape(j.Project),
	}
	return strings.Join(fields, fieldSep)
}

// ErrBadJob reports an unparseable job log line.
var ErrBadJob = errors.New("joblog: bad job line")

// UnmarshalLine parses one line of the job log.
func UnmarshalLine(line string) (Job, error) {
	parts := strings.Split(line, fieldSep)
	if len(parts) != numFields {
		return Job{}, fmt.Errorf("%w: %d fields, want %d", ErrBadJob, len(parts), numFields)
	}
	var j Job
	id, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Job{}, fmt.Errorf("%w: id %q", ErrBadJob, parts[0])
	}
	j.ID = id
	j.Name = unescape(parts[1])
	j.ExecFile = unescape(parts[2])
	if j.QueueTime, err = parseEpoch(parts[3]); err != nil {
		return Job{}, fmt.Errorf("%w: queue time %q", ErrBadJob, parts[3])
	}
	if j.StartTime, err = parseEpoch(parts[4]); err != nil {
		return Job{}, fmt.Errorf("%w: start time %q", ErrBadJob, parts[4])
	}
	if j.EndTime, err = parseEpoch(parts[5]); err != nil {
		return Job{}, fmt.Errorf("%w: end time %q", ErrBadJob, parts[5])
	}
	if j.Partition, err = bgp.ParsePartition(parts[6]); err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	j.User = unescape(parts[7])
	j.Project = unescape(parts[8])
	return j, nil
}

// Writer streams jobs to an underlying io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one job record; errors are sticky.
func (w *Writer) Write(j Job) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(j.MarshalLine()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of jobs written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams jobs from an underlying io.Reader.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 4*1024*1024)
	return &Reader{s: s}
}

// Read returns the next job, or io.EOF at end of input.
func (r *Reader) Read() (Job, error) {
	for r.s.Scan() {
		r.line++
		line := r.s.Text()
		if line == "" {
			continue
		}
		j, err := UnmarshalLine(line)
		if err != nil {
			return Job{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return j, nil
	}
	if err := r.s.Err(); err != nil {
		return Job{}, err
	}
	return Job{}, io.EOF
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Job, error) {
	var out []Job
	for {
		j, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, j)
	}
}

// Log is an in-memory job log ordered by EndTime, with the aggregate
// queries the co-analysis needs.
type Log struct {
	jobs []Job
}

// NewLog returns a log over jobs ordered by (EndTime, ID).
func NewLog(jobs []Job) *Log {
	l := &Log{jobs: append([]Job(nil), jobs...)}
	sort.SliceStable(l.jobs, func(i, j int) bool {
		if !l.jobs[i].EndTime.Equal(l.jobs[j].EndTime) {
			return l.jobs[i].EndTime.Before(l.jobs[j].EndTime)
		}
		return l.jobs[i].ID < l.jobs[j].ID
	})
	return l
}

// Len returns the number of jobs.
func (l *Log) Len() int { return len(l.jobs) }

// All returns the jobs ordered by EndTime (shared slice; callers must
// not mutate).
func (l *Log) All() []Job { return l.jobs }

// DistinctExecutables returns the number of distinct ExecFiles and the
// number of ExecFiles submitted more than once.
func (l *Log) DistinctExecutables() (distinct, resubmitted int) {
	count := make(map[string]int)
	for _, j := range l.jobs {
		count[j.ExecFile]++
	}
	for _, n := range count {
		if n > 1 {
			resubmitted++
		}
	}
	return len(count), resubmitted
}

// RunningAt returns the jobs executing at time t.
func (l *Log) RunningAt(t time.Time) []Job {
	var out []Job
	for _, j := range l.jobs {
		if j.RunningAt(t) {
			out = append(out, j)
		}
	}
	return out
}

// RunningOn returns the jobs executing at time t whose partition
// contains midplane mp.
func (l *Log) RunningOn(t time.Time, mp int) []Job {
	var out []Job
	for _, j := range l.jobs {
		if j.RunningAt(t) && j.OnMidplane(mp) {
			out = append(out, j)
		}
	}
	return out
}

// MidplaneBusySeconds returns, per global midplane, the total seconds
// the midplane spent allocated to jobs — the "workload" of Figure 4b.
// If minSize > 0, only jobs at least that wide contribute (Figure 4c
// uses wide jobs only).
func (l *Log) MidplaneBusySeconds(minSize int) [bgp.NumMidplanes]float64 {
	var out [bgp.NumMidplanes]float64
	for _, j := range l.jobs {
		if j.Size() < minSize {
			continue
		}
		sec := j.Runtime().Seconds()
		if sec < 0 {
			continue
		}
		for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
			out[mp] += sec
		}
	}
	return out
}

// Span returns the earliest QueueTime and the latest EndTime.
func (l *Log) Span() (first, last time.Time) {
	if len(l.jobs) == 0 {
		return
	}
	first = l.jobs[0].QueueTime
	for _, j := range l.jobs {
		if j.QueueTime.Before(first) {
			first = j.QueueTime
		}
	}
	return first, l.jobs[len(l.jobs)-1].EndTime
}

// ByExecFile groups job indices by executable, each group ordered by
// StartTime; used by resubmission analyses.
func (l *Log) ByExecFile() map[string][]Job {
	m := make(map[string][]Job)
	for _, j := range l.jobs {
		m[j.ExecFile] = append(m[j.ExecFile], j)
	}
	for _, js := range m {
		sort.Slice(js, func(a, b int) bool { return js[a].StartTime.Before(js[b].StartTime) })
	}
	return m
}
