package errcat

import (
	"fmt"

	"repro/internal/raslog"
)

// Named codes that the paper calls out explicitly. Exported so the
// analysis tests and examples can refer to them without string literals.
const (
	// CodeRASStorm is the L1 data-cache parity error
	// (_bgp_err_cns_ras_storm_fatal), a system failure reported from the
	// KERNEL domain; one instance consecutively interrupted 28 jobs.
	CodeRASStorm = "_bgp_err_cns_ras_storm_fatal"
	// CodeDDRController is the DDR controller error, a sticky system
	// failure.
	CodeDDRController = "_bgp_err_ddr_ue_summary_fatal"
	// CodeFSConfig is the file-system configuration error, a sticky
	// system failure.
	CodeFSConfig = "fs_configuration_error"
	// CodeLinkCard is the link-card error, a sticky system failure.
	CodeLinkCard = "LinkCardPowerError"
	// CodeCiodHungProxy is an application error caused by a user
	// operation mistake in the file system; it propagates spatially
	// because the file system is shared.
	CodeCiodHungProxy = "CiodHungProxy"
	// CodeScriptError (bg_code_script_error) is a script error in the
	// file system; also spatially propagating.
	CodeScriptError = "bg_code_script_error"
	// CodeBulkPower is BULK_POWER_FATAL, a hardware alarm that is FATAL
	// by severity but never interrupts jobs (transient; diagnostics run
	// while jobs continue).
	CodeBulkPower = "BULK_POWER_FATAL"
	// CodeTorusSum is _bgp_err_torus_fatal_sum, a network alarm resolved
	// by a higher-level protocol; jobs are protected.
	CodeTorusSum = "_bgp_err_torus_fatal_sum"
	// CodeInvalidMemAddr is the invalid-memory-address application error.
	CodeInvalidMemAddr = "_bgp_err_app_invalid_mem_addr"
	// CodeOutOfMemory is the out-of-memory application error.
	CodeOutOfMemory = "_bgp_err_app_out_of_memory"
	// CodeFSOperation is the file-system-operation application error.
	CodeFSOperation = "_bgp_err_app_fs_operation"
	// CodeCollectiveOp is the collective-operation application error.
	CodeCollectiveOp = "_bgp_err_app_collective_op"
)

// Intrepid returns the default 82-type catalog patterned on the FATAL
// ERRCODE population of the Intrepid RAS log: 72 system-failure types,
// 8 application-error types, 2 non-interrupting types. Weights are
// tuned so roughly 75% of fatal-event volume reports from the KERNEL
// component, as the paper observed.
func Intrepid() *Catalog {
	var codes []Code

	add := func(c Code) { codes = append(codes, c) }

	family := func(n int, class Class, comp raslog.Component, sub, nameFmt, msgID, msg string, weight float64, sticky bool) {
		for i := 0; i < n; i++ {
			add(Code{
				Name:         fmt.Sprintf(nameFmt, i),
				MsgID:        fmt.Sprintf("%s%02d", msgID, i),
				Component:    comp,
				SubComponent: sub,
				Message:      msg,
				Class:        class,
				Interrupting: true,
				Sticky:       sticky,
				Weight:       weight,
			})
		}
	}

	// --- Named system failures (5) ---
	add(Code{Name: CodeRASStorm, MsgID: "KERN_0802", Component: raslog.CompKernel,
		SubComponent: "CNS", Message: "L1 data cache parity error; RAS storm",
		Class: ClassSystem, Interrupting: true, Sticky: true, Weight: 8})
	add(Code{Name: CodeDDRController, MsgID: "KERN_0309", Component: raslog.CompKernel,
		SubComponent: "DDR", Message: "DDR controller uncorrectable error summary",
		Class: ClassSystem, Interrupting: true, Sticky: true, Weight: 5})
	add(Code{Name: CodeFSConfig, MsgID: "MMCS_0217", Component: raslog.CompMMCS,
		SubComponent: "FILESYS", Message: "file system configuration error on I/O path",
		Class: ClassSystem, Interrupting: true, Sticky: true, Weight: 4})
	add(Code{Name: CodeLinkCard, MsgID: "CARD_0520", Component: raslog.CompCard,
		SubComponent: "LINKCARD", Message: "link card power fault detected",
		Class: ClassSystem, Interrupting: true, Sticky: true, Weight: 4})
	add(Code{Name: "DetectedClockCardErrors", MsgID: "CARD_0411", Component: raslog.CompCard,
		SubComponent: "PALOMINO_S", Message: "An error(s) was detected by the Clock card : Error=Loss of reference input",
		Class: ClassSystem, Interrupting: true, Weight: 2})

	// --- KERNEL system families (36 more; kernel carries ~75% of volume) ---
	family(10, ClassSystem, raslog.CompKernel, "CNK", "_bgp_err_kernel_panic_%02d", "KERN_10", "compute node kernel panic", 3.0, false)
	family(5, ClassSystem, raslog.CompKernel, "L2", "_bgp_err_l2_array_parity_%d", "KERN_11", "L2 array parity error", 2.5, false)
	family(5, ClassSystem, raslog.CompKernel, "SNOOP", "_bgp_err_snoop_fatal_%d", "KERN_12", "snoop unit fatal condition", 2.0, false)
	family(5, ClassSystem, raslog.CompKernel, "COLLECTIVE", "_bgp_err_collective_net_%d", "KERN_13", "collective network fatal error", 2.0, false)
	family(5, ClassSystem, raslog.CompKernel, "DMA", "_bgp_err_dma_fatal_%d", "KERN_14", "DMA unit fatal error", 2.0, false)
	family(4, ClassSystem, raslog.CompKernel, "TREE", "_bgp_err_tree_ecc_%d", "KERN_15", "tree network uncorrectable ECC", 1.5, false)
	family(2, ClassSystem, raslog.CompKernel, "CIOD", "_bgp_err_ciod_fatal_%d", "KERN_16", "control/IO daemon fatal condition", 1.5, true)

	// --- MC system families (10) ---
	family(6, ClassSystem, raslog.CompMC, "HW", "MC_HARDWARE_FATAL_%d", "MC_07", "machine controller hardware fatal", 0.8, false)
	family(4, ClassSystem, raslog.CompMC, "PGOOD", "MC_PGOOD_FAULT_%d", "MC_08", "power-good signal fault", 0.6, false)

	// --- MMCS system families (9 more) ---
	family(5, ClassSystem, raslog.CompMMCS, "BOOT", "MMCS_BOOT_FAILURE_%d", "MMCS_09", "partition boot failure", 1.0, false)
	family(3, ClassSystem, raslog.CompMMCS, "DB", "MMCS_DB_FATAL_%d", "MMCS_10", "control-system database fatal", 0.5, false)
	family(1, ClassSystem, raslog.CompMMCS, "POLLER", "MMCS_POLLER_FATAL_%d", "MMCS_11", "environmental poller fatal", 0.5, false)

	// --- CARD system families (7 more) ---
	family(4, ClassSystem, raslog.CompCard, "POWER", "CARD_POWER_FAULT_%d", "CARD_06", "node card power fault", 0.7, false)
	family(3, ClassSystem, raslog.CompCard, "TEMP", "CARD_TEMP_FATAL_%d", "CARD_07", "over-temperature condition", 0.5, true)

	// --- BAREMETAL (3) and DIAGS (2) system families ---
	family(3, ClassSystem, raslog.CompBareMetal, "SVC", "BAREMETAL_SVC_FATAL_%d", "BM_03", "service facility fatal", 0.4, false)
	family(2, ClassSystem, raslog.CompDiags, "MEMTEST", "DIAGS_MEMTEST_FATAL_%d", "DIAG_02", "diagnostic memory test fatal", 0.3, false)

	// --- Application errors (8), all reported from the KERNEL domain:
	// the paper found no fatal event reported from APPLICATION, which is
	// exactly why the COMPONENT field cannot separate the classes. ---
	appErr := func(name, msgID, sub, msg string, weight float64, shared bool) {
		add(Code{Name: name, MsgID: msgID, Component: raslog.CompKernel,
			SubComponent: sub, Message: msg, Class: ClassApplication,
			Interrupting: true, Shared: shared, Weight: weight})
	}
	appErr(CodeInvalidMemAddr, "KERN_2001", "CNK", "application segmentation fault: invalid memory address", 8, false)
	appErr(CodeOutOfMemory, "KERN_2002", "CNK", "application heap exhausted: out of memory", 6, false)
	appErr(CodeFSOperation, "KERN_2003", "CIOD", "application file system operation failed", 4, false)
	appErr(CodeCollectiveOp, "KERN_2004", "COLLECTIVE", "application collective operation mismatch", 3, false)
	appErr(CodeCiodHungProxy, "KERN_2005", "CIOD", "ciod hung proxy: file system operation stalled", 3, true)
	appErr(CodeScriptError, "KERN_2006", "CIOD", "job script error in shared file system", 2, true)
	appErr("_bgp_err_app_alignment", "KERN_2007", "CNK", "application alignment exception", 2, false)
	appErr("_bgp_err_app_abort", "KERN_2008", "CNK", "application called abort", 2, false)

	// --- Non-interrupting FATAL alarms (2) ---
	add(Code{Name: CodeBulkPower, MsgID: "CARD_0999", Component: raslog.CompCard,
		SubComponent: "BULKPOWER", Message: "error in bulk power module; rack partially disabled for diagnostics",
		Class: ClassSystem, Interrupting: false, Weight: 5})
	add(Code{Name: CodeTorusSum, MsgID: "KERN_0901", Component: raslog.CompKernel,
		SubComponent: "TORUS", Message: "torus fatal summary; recovered by higher-level protocol",
		Class: ClassSystem, Interrupting: false, Weight: 6})

	cat, err := New(codes)
	if err != nil {
		panic("errcat: invalid built-in catalog: " + err.Error())
	}
	return cat
}
