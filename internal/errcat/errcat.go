// Package errcat defines the catalog of FATAL RAS event types (ERRCODEs)
// used by the synthetic Intrepid campaign. The paper observed 82 distinct
// FATAL ERRCODEs from six reporting components; after co-analysis they
// resolve into 72 system-failure types, 8 application-error types, and 2
// types that never interrupt jobs (false-fatal alarms).
//
// The catalog carries generator-side ground truth (origin class, whether
// the event interrupts co-located jobs, whether it leaves hardware faulty
// until repaired, whether it hits shared file-system/I/O infrastructure).
// Ground truth never flows into the analysis pipeline; it exists so tests
// can score the pipeline's inferences against an oracle, replacing the
// paper's verification by Argonne system administrators.
package errcat

import (
	"fmt"
	"sort"

	"repro/internal/raslog"
)

// Class is the ground-truth origin of a fatal event type.
type Class int

const (
	// ClassSystem marks failures of system hardware or software.
	ClassSystem Class = iota
	// ClassApplication marks errors introduced by users (buggy codes,
	// operation mistakes).
	ClassApplication
)

// String names the class.
func (c Class) String() string {
	if c == ClassApplication {
		return "application"
	}
	return "system"
}

// Code describes one FATAL ERRCODE type.
type Code struct {
	// Name is the ERRCODE string as it appears in RAS records.
	Name string
	// MsgID is the message-source identifier emitted with the code.
	MsgID string
	// Component is the reporting software component.
	Component raslog.Component
	// SubComponent is the functional area within the component.
	SubComponent string
	// Message is the prose description template for the event.
	Message string

	// Class is the ground-truth origin (system vs application).
	Class Class
	// Interrupting is ground truth for whether the event kills jobs
	// running at its location. The two false-fatal types
	// (BULK_POWER_FATAL, _bgp_err_torus_fatal_sum) are non-interrupting.
	Interrupting bool
	// Sticky marks system failures that leave the hardware faulty until
	// a repair completes; the scheduler keeps allocating the failed
	// midplanes meanwhile, producing job-related redundancy.
	Sticky bool
	// Shared marks failures of shared file-system / I/O infrastructure
	// that can interrupt several jobs at once (spatial propagation).
	Shared bool
	// Weight is the relative occurrence frequency of the code within
	// its class; system weights drive the fault injector, application
	// weights drive the buggy-executable generator.
	Weight float64
}

// Catalog is an immutable indexed set of codes.
type Catalog struct {
	codes  []Code
	byName map[string]int
}

// New builds a catalog from codes, rejecting duplicates.
func New(codes []Code) (*Catalog, error) {
	c := &Catalog{codes: append([]Code(nil), codes...), byName: make(map[string]int, len(codes))}
	for i, code := range c.codes {
		if code.Name == "" {
			return nil, fmt.Errorf("errcat: empty code name at index %d", i)
		}
		if _, dup := c.byName[code.Name]; dup {
			return nil, fmt.Errorf("errcat: duplicate code %q", code.Name)
		}
		if code.Weight <= 0 {
			return nil, fmt.Errorf("errcat: code %q has non-positive weight", code.Name)
		}
		c.byName[code.Name] = i
	}
	return c, nil
}

// Len returns the number of codes.
func (c *Catalog) Len() int { return len(c.codes) }

// All returns the codes in catalog order (copy).
func (c *Catalog) All() []Code { return append([]Code(nil), c.codes...) }

// Lookup returns the code by ERRCODE name.
func (c *Catalog) Lookup(name string) (Code, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Code{}, false
	}
	return c.codes[i], true
}

// ByClass returns the codes of one ground-truth class, in catalog order.
func (c *Catalog) ByClass(cl Class) []Code {
	var out []Code
	for _, code := range c.codes {
		if code.Class == cl {
			out = append(out, code)
		}
	}
	return out
}

// Interrupting returns the codes with the given ground-truth
// interrupting flag.
func (c *Catalog) Interrupting(want bool) []Code {
	var out []Code
	for _, code := range c.codes {
		if code.Interrupting == want {
			out = append(out, code)
		}
	}
	return out
}

// ComponentShare returns, per component, the fraction of total weight
// contributed by that component's codes (over the whole catalog).
func (c *Catalog) ComponentShare() map[raslog.Component]float64 {
	total := 0.0
	per := make(map[raslog.Component]float64)
	for _, code := range c.codes {
		total += code.Weight
		per[code.Component] += code.Weight
	}
	for k := range per {
		per[k] /= total
	}
	return per
}

// Names returns all ERRCODE names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.codes))
	for _, code := range c.codes {
		out = append(out, code.Name)
	}
	sort.Strings(out)
	return out
}
