package errcat

import (
	"strings"
	"testing"

	"repro/internal/raslog"
)

func TestIntrepidCensus(t *testing.T) {
	cat := Intrepid()
	if got := cat.Len(); got != 82 {
		t.Fatalf("catalog size = %d, want 82 (paper: 82 FATAL ERRCODE types)", got)
	}
	sys := cat.ByClass(ClassSystem)
	app := cat.ByClass(ClassApplication)
	if len(app) != 8 {
		t.Errorf("application types = %d, want 8 (Obs. 2)", len(app))
	}
	nonInt := cat.Interrupting(false)
	if len(nonInt) != 2 {
		t.Errorf("non-interrupting types = %d, want 2 (BULK_POWER_FATAL, torus)", len(nonInt))
	}
	// 72 system types include the 2 non-interrupting alarms.
	if len(sys) != 74 {
		t.Errorf("system types = %d, want 74 (72 interrupting + 2 alarms)", len(sys))
	}
	interruptingSys := 0
	for _, c := range sys {
		if c.Interrupting {
			interruptingSys++
		}
	}
	if interruptingSys != 72 {
		t.Errorf("interrupting system types = %d, want 72 (Obs. 2)", interruptingSys)
	}
}

func TestIntrepidComponents(t *testing.T) {
	cat := Intrepid()
	// No fatal code reports from the APPLICATION component: that is the
	// paper's motivation for co-analysis (§IV-B).
	for _, c := range cat.All() {
		if c.Component == raslog.CompApplication {
			t.Errorf("code %q reports from APPLICATION; the paper observed none", c.Name)
		}
	}
	// Six components carry fatal codes.
	comps := map[raslog.Component]bool{}
	for _, c := range cat.All() {
		comps[c.Component] = true
	}
	if len(comps) != 6 {
		t.Errorf("components with fatal codes = %d, want 6", len(comps))
	}
	// KERNEL carries roughly 75% of fatal volume by weight.
	share := cat.ComponentShare()[raslog.CompKernel]
	if share < 0.65 || share > 0.90 {
		t.Errorf("KERNEL weight share = %.3f, want ~0.75", share)
	}
	// Application errors report from KERNEL, making COMPONENT useless
	// for class separation.
	for _, c := range cat.ByClass(ClassApplication) {
		if c.Component != raslog.CompKernel {
			t.Errorf("app error %q reports from %v, want KERNEL", c.Name, c.Component)
		}
	}
}

func TestIntrepidNamedCodes(t *testing.T) {
	cat := Intrepid()
	cases := []struct {
		name         string
		class        Class
		interrupting bool
		sticky       bool
		shared       bool
	}{
		{CodeRASStorm, ClassSystem, true, true, false},
		{CodeDDRController, ClassSystem, true, true, false},
		{CodeFSConfig, ClassSystem, true, true, false},
		{CodeLinkCard, ClassSystem, true, true, false},
		{CodeBulkPower, ClassSystem, false, false, false},
		{CodeTorusSum, ClassSystem, false, false, false},
		{CodeCiodHungProxy, ClassApplication, true, false, true},
		{CodeScriptError, ClassApplication, true, false, true},
		{CodeInvalidMemAddr, ClassApplication, true, false, false},
		{CodeOutOfMemory, ClassApplication, true, false, false},
	}
	for _, c := range cases {
		code, ok := cat.Lookup(c.name)
		if !ok {
			t.Errorf("Lookup(%q): missing", c.name)
			continue
		}
		if code.Class != c.class || code.Interrupting != c.interrupting ||
			code.Sticky != c.sticky || code.Shared != c.shared {
			t.Errorf("%q = class=%v int=%v sticky=%v shared=%v, want %+v",
				c.name, code.Class, code.Interrupting, code.Sticky, code.Shared, c)
		}
	}
	if _, ok := cat.Lookup("no_such_code"); ok {
		t.Error("Lookup of unknown code succeeded")
	}
}

func TestNewRejectsBadCatalogs(t *testing.T) {
	good := Code{Name: "a", Component: raslog.CompKernel, Weight: 1}
	if _, err := New([]Code{good, good}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New([]Code{{Name: "", Weight: 1}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New([]Code{{Name: "x", Weight: 0}}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestNamesSortedUnique(t *testing.T) {
	cat := Intrepid()
	names := cat.Names()
	if len(names) != cat.Len() {
		t.Fatalf("Names len = %d, want %d", len(names), cat.Len())
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) >= 0 {
			t.Fatalf("Names not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	cat := Intrepid()
	a := cat.All()
	a[0].Name = "mutated"
	if b := cat.All(); b[0].Name == "mutated" {
		t.Error("All() exposes internal slice")
	}
}

func TestClassString(t *testing.T) {
	if ClassSystem.String() != "system" || ClassApplication.String() != "application" {
		t.Error("Class.String wrong")
	}
}
