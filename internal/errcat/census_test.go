package errcat_test

import (
	"sort"
	"testing"

	"repro/internal/errcat"
	"repro/internal/raslog"
)

// TestIntrepidCensus pins the Intrepid catalog to the population
// DESIGN.md documents: 82 FATAL ERRCODE types across 6 components —
// 74 system-failure types (including the two non-interrupting "false
// fatal" alarms) and 8 application-error types — with roughly 75% of
// weighted fatal volume reporting from the KERNEL component. The
// errcode analyzer links this catalog as analysis-time ground truth,
// so drift here silently changes what the linter enforces; this test
// makes any drift a visible decision.
func TestIntrepidCensus(t *testing.T) {
	c := errcat.Intrepid()

	if got := c.Len(); got != 82 {
		t.Errorf("catalog has %d codes, want 82", got)
	}
	if got := len(c.ByClass(errcat.ClassSystem)); got != 74 {
		t.Errorf("system-failure types = %d, want 74", got)
	}
	if got := len(c.ByClass(errcat.ClassApplication)); got != 8 {
		t.Errorf("application-error types = %d, want 8", got)
	}

	wantComponents := map[raslog.Component]int{
		raslog.CompKernel:    47,
		raslog.CompMC:        10,
		raslog.CompMMCS:      10,
		raslog.CompCard:      10,
		raslog.CompBareMetal: 3,
		raslog.CompDiags:     2,
	}
	gotComponents := make(map[raslog.Component]int)
	for _, code := range c.All() {
		gotComponents[code.Component]++
	}
	if len(gotComponents) != len(wantComponents) {
		t.Errorf("catalog spans %d components, want %d", len(gotComponents), len(wantComponents))
	}
	for comp, want := range wantComponents {
		if got := gotComponents[comp]; got != want {
			t.Errorf("component %v has %d codes, want %d", comp, got, want)
		}
	}

	// Exactly the two false-fatal alarms are non-interrupting.
	nonInt := c.Interrupting(false)
	if len(nonInt) != 2 {
		t.Fatalf("non-interrupting types = %d, want 2", len(nonInt))
	}
	seen := map[string]bool{}
	for _, code := range nonInt {
		seen[code.Name] = true
		if code.Class != errcat.ClassSystem {
			t.Errorf("false fatal %s has class %v, want system", code.Name, code.Class)
		}
	}
	if !seen[errcat.CodeBulkPower] || !seen[errcat.CodeTorusSum] {
		t.Errorf("non-interrupting set = %v, want {%s, %s}", seen, errcat.CodeBulkPower, errcat.CodeTorusSum)
	}

	// Names are unique and every name round-trips through Lookup.
	names := map[string]bool{}
	for _, code := range c.All() {
		if names[code.Name] {
			t.Errorf("duplicate ERRCODE name %q", code.Name)
		}
		names[code.Name] = true
		got, ok := c.Lookup(code.Name)
		if !ok || got.Name != code.Name {
			t.Errorf("Lookup(%q) = (%v, %v), want the code itself", code.Name, got.Name, ok)
		}
	}

	// KERNEL carries ~75% of weighted fatal volume (the paper's
	// observation the weights are tuned to).
	share := c.ComponentShare()
	if k := share[raslog.CompKernel]; k < 0.70 || k > 0.85 {
		t.Errorf("KERNEL weight share = %.4f, want ~0.75 (0.70..0.85)", k)
	}
	comps := make([]raslog.Component, 0, len(share))
	for comp := range share {
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	total := 0.0
	for _, comp := range comps {
		total += share[comp]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("component shares sum to %.6f, want 1", total)
	}
}
