// Package tailio turns a growing input — typically a log file another
// process is appending to — into a blocking io.Reader: where a plain
// read would report io.EOF, a tail reader polls until more bytes
// appear or its context is cancelled. Layered under the raslog/joblog
// streaming codecs (their tail constructors wrap this), it lets the
// serving daemon follow live logs with the exact same decode path the
// batch tools use: an os.File keeps returning fresh bytes after EOF
// once the writer appends, so polling one fd is all "tail -f" needs.
package tailio

import (
	"context"
	"io"
	"time"
)

// DefaultPoll is the poll interval used when NewReader gets a
// non-positive one: long enough to stay off the CPU, short enough that
// a quiet log adds well under a second of ingest latency.
const DefaultPoll = 200 * time.Millisecond

// Reader is the tailing wrapper. It is not safe for concurrent Read
// calls (io.Reader's usual contract).
type Reader struct {
	r    io.Reader
	ctx  context.Context
	poll time.Duration
}

// NewReader wraps r. Read blocks over r's io.EOF, retrying every poll
// interval, until the context is cancelled — at which point it drains
// whatever is already readable and then reports a clean io.EOF, so
// line scanners downstream terminate without error.
func NewReader(ctx context.Context, r io.Reader, poll time.Duration) *Reader {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &Reader{r: r, ctx: ctx, poll: poll}
}

// Read implements io.Reader with EOF-as-wait semantics.
func (t *Reader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			// Deliver the bytes; a sticky error resurfaces on the next
			// call, per the io.Reader convention.
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// At EOF (or a spurious zero-byte read): wait for growth or
		// cancellation. Cancellation reads as end-of-stream.
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}
