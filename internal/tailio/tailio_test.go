package tailio_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/tailio"
)

// growingBuffer is a goroutine-safe buffer whose Read reports io.EOF
// when drained — the same shape as reading a log file another process
// appends to.
type growingBuffer struct {
	mu  sync.Mutex
	buf []byte
	off int
}

func (g *growingBuffer) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.buf = append(g.buf, p...)
	return len(p), nil
}

func (g *growingBuffer) Read(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.off >= len(g.buf) {
		return 0, io.EOF
	}
	n := copy(p, g.buf[g.off:])
	g.off += n
	return n, nil
}

func TestReaderWaitsOverEOFAndEndsOnCancel(t *testing.T) {
	t.Parallel()
	var g growingBuffer
	ctx, cancel := context.WithCancel(context.Background())
	tr := tailio.NewReader(ctx, &g, time.Millisecond)

	if _, err := g.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 16)
	n, err := tr.Read(p)
	if err != nil || string(p[:n]) != "hello\n" {
		t.Fatalf("Read = %q, %v; want \"hello\\n\", nil", p[:n], err)
	}

	// A read racing a writer must block over the EOF, then deliver.
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, err := tr.Read(p)
		if err != nil || string(p[:n]) != "more" {
			t.Errorf("Read = %q, %v; want \"more\", nil", p[:n], err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the reader reach its poll loop
	if _, err := g.Write([]byte("more")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail read did not observe appended bytes")
	}

	// Cancellation: pending bytes drain first, then a clean EOF.
	if _, err := g.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	cancel()
	n, err = tr.Read(p)
	if err != nil || string(p[:n]) != "tail" {
		t.Fatalf("post-cancel Read = %q, %v; want \"tail\", nil", p[:n], err)
	}
	if _, err := tr.Read(p); err != io.EOF {
		t.Fatalf("drained post-cancel Read error = %v, want io.EOF", err)
	}
}

// TestTailThroughRASCodec pins the composition the daemon uses: the
// raslog streaming decoder over a tail reader sees records as their
// lines are completed — a partially written line never surfaces — and
// terminates cleanly on cancel.
func TestTailThroughRASCodec(t *testing.T) {
	t.Parallel()
	var g growingBuffer
	ctx, cancel := context.WithCancel(context.Background())
	r := raslog.NewTailReader(ctx, &g, time.Millisecond)

	rec := raslog.Record{
		RecID: 1, MsgID: "KERN_0802", Component: raslog.CompKernel,
		ErrCode: "_bgp_err_test", Severity: raslog.SevFatal,
		EventTime: time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC),
		Location:  "R00-M0",
	}
	line := rec.MarshalLine()

	type result struct {
		recs []raslog.Record
		err  error
	}
	results := make(chan result, 1)
	go func() {
		var got []raslog.Record
		for r.Next() {
			got = append(got, *r.Record())
		}
		results <- result{got, r.Err()}
	}()

	// Write the first record in two halves with a pause: the decoder
	// must wait for the newline, not error on the fragment.
	half := len(line) / 2
	if _, err := g.Write([]byte(line[:half])); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := g.Write([]byte(line[half:] + "\n")); err != nil {
		t.Fatal(err)
	}
	rec2 := rec
	rec2.RecID = 2
	rec2.EventTime = rec.EventTime.Add(time.Second)
	if _, err := g.Write([]byte(rec2.MarshalLine() + "\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the tail loop drain both lines
	cancel()

	select {
	case res := <-results:
		if res.err != nil {
			t.Fatalf("reader error: %v", res.err)
		}
		if len(res.recs) != 2 || res.recs[0].RecID != 1 || res.recs[1].RecID != 2 {
			t.Fatalf("decoded %d records %+v, want RecIDs 1, 2", len(res.recs), res.recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail decode did not terminate after cancel")
	}
}
