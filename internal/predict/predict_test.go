package predict

import (
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/raslog"
	"repro/internal/symtab"
)

var (
	t0   = time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	ptab = symtab.NewTable()
)

func ev(code string, at time.Duration, mps ...int) *filter.Event {
	return &filter.Event{
		Code: ptab.Errcodes.Intern(code), Component: raslog.CompKernel,
		First: t0.Add(at), Last: t0.Add(at), Midplanes: mps, Size: 1,
	}
}

func TestChainPredictorWindow(t *testing.T) {
	p := NewChainPredictor(2 * time.Hour)
	p.Observe(ev("x", 0, 5))
	if !p.Alarmed(5, t0.Add(time.Hour)) {
		t.Error("midplane 5 should be alarmed within the window")
	}
	if p.Alarmed(5, t0.Add(3*time.Hour)) {
		t.Error("alarm should lapse after the window")
	}
	if p.Alarmed(6, t0.Add(time.Hour)) {
		t.Error("unrelated midplane alarmed")
	}
	p.Reset()
	if p.Alarmed(5, t0.Add(time.Hour)) {
		t.Error("Reset did not clear alarms")
	}
}

func TestChainPredictorKeepsLatestHorizon(t *testing.T) {
	p := NewChainPredictor(time.Hour)
	p.Observe(ev("x", 0, 5))
	p.Observe(ev("x", 30*time.Minute, 5))
	if !p.Alarmed(5, t0.Add(80*time.Minute)) {
		t.Error("second event should extend the alarm")
	}
}

func TestRatePredictorDecay(t *testing.T) {
	p := NewRatePredictor(time.Hour, 1.5)
	p.Observe(ev("x", 0, 3))
	if p.Alarmed(3, t0) {
		t.Error("one event should not reach threshold 1.5")
	}
	p.Observe(ev("x", 10*time.Minute, 3))
	if !p.Alarmed(3, t0.Add(11*time.Minute)) {
		t.Error("two quick events should alarm")
	}
	// After several decay constants the alarm must clear.
	if p.Alarmed(3, t0.Add(12*time.Hour)) {
		t.Error("alarm should decay away")
	}
}

func TestRatePredictorSeparateMidplanes(t *testing.T) {
	p := NewRatePredictor(time.Hour, 0.5)
	p.Observe(ev("x", 0, 1))
	if p.Alarmed(2, t0.Add(time.Minute)) {
		t.Error("midplane 2 alarmed without events")
	}
}

func TestEvaluateChainCatchesRepeats(t *testing.T) {
	// Three repeats at midplane 7 within the window, plus one isolated
	// event elsewhere: chain predictor catches the repeats only.
	events := []*filter.Event{
		ev("a", 0, 7),
		ev("a", 30*time.Minute, 7),
		ev("a", 60*time.Minute, 7),
		ev("b", 50*time.Hour, 20),
	}
	r, err := Evaluate(NewChainPredictor(2*time.Hour), events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != 2 || r.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", r.Hits, r.Misses)
	}
	if r.Recall != 0.5 {
		t.Errorf("recall = %v", r.Recall)
	}
	if r.AlarmMidplaneHours <= 0 {
		t.Error("no alarm time integrated")
	}
}

func TestEvaluateBaselines(t *testing.T) {
	events := []*filter.Event{ev("a", 0, 1), ev("a", time.Hour, 1)}
	never, err := Evaluate(NeverPredictor{}, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if never.Hits != 0 || never.Recall != 0 || never.AlarmMidplaneHours != 0 {
		t.Errorf("never: %+v", never)
	}
	always, err := Evaluate(AlwaysPredictor{}, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if always.Misses != 0 || always.Recall != 1 {
		t.Errorf("always: %+v", always)
	}
	if always.AlarmMidplaneHours <= never.AlarmMidplaneHours {
		t.Error("always must integrate more alarm time than never")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(NeverPredictor{}, nil, nil); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCompareOrdersAndNames(t *testing.T) {
	events := []*filter.Event{ev("a", 0, 1), ev("a", 20*time.Minute, 1)}
	ps := []Predictor{NeverPredictor{}, NewChainPredictor(time.Hour), AlwaysPredictor{}}
	rs, err := Compare(ps, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Predictor != "never" || rs[2].Predictor != "always" {
		t.Errorf("names = %v, %v", rs[0].Predictor, rs[2].Predictor)
	}
	if !(rs[1].Recall > rs[0].Recall) {
		t.Error("chain should beat never on this stream")
	}
	// Efficiency: chain buys its recall with far less alarm budget than
	// always.
	if rs[1].AlarmMidplaneHours >= rs[2].AlarmMidplaneHours {
		t.Error("chain should use less alarm time than always")
	}
}
