// Package predict implements the failure-prediction extension the
// paper's §VII calls for: predictors that name the *location* of the
// next fatal event, so proactive actions can be skipped when the
// implicated nodes are idle (Obs. 7: 45% of fatal events strike idle
// hardware).
//
// Two online predictors are provided — a decayed per-midplane rate
// model and a repeat-location (chain) model — plus an evaluator that
// replays a filtered event stream and scores alarm precision, recall,
// and the fraction of useless proactive actions a location-aware
// predictor avoids.
package predict

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bgp"
	"repro/internal/filter"
)

// Predictor is an online location-aware failure predictor. Observe
// feeds it each fatal event as it happens; Alarmed reports whether the
// predictor currently flags a midplane as likely to fail within its
// horizon.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Observe feeds one fatal event (time-ordered).
	Observe(ev *filter.Event)
	// Alarmed reports whether midplane mp is flagged at time t.
	Alarmed(mp int, t time.Time) bool
	// Reset clears all learned state.
	Reset()
}

// RatePredictor alarms a midplane when its exponentially decayed fatal
// event rate exceeds a threshold: the machinery behind "this midplane
// has been failing a lot lately".
type RatePredictor struct {
	// Tau is the decay time constant.
	Tau time.Duration
	// Threshold is the alarm level in decayed events.
	Threshold float64

	score [bgp.NumMidplanes]float64
	last  [bgp.NumMidplanes]time.Time
}

// NewRatePredictor returns a rate predictor with the given decay and
// threshold.
func NewRatePredictor(tau time.Duration, threshold float64) *RatePredictor {
	return &RatePredictor{Tau: tau, Threshold: threshold}
}

// Name implements Predictor.
func (p *RatePredictor) Name() string {
	return fmt.Sprintf("rate(tau=%s,thr=%.2g)", p.Tau, p.Threshold)
}

// Reset implements Predictor.
func (p *RatePredictor) Reset() {
	p.score = [bgp.NumMidplanes]float64{}
	p.last = [bgp.NumMidplanes]time.Time{}
}

func (p *RatePredictor) decayed(mp int, t time.Time) float64 {
	if p.last[mp].IsZero() {
		return 0
	}
	dt := t.Sub(p.last[mp])
	if dt <= 0 {
		return p.score[mp]
	}
	return p.score[mp] * math.Exp(-dt.Seconds()/p.Tau.Seconds())
}

// Observe implements Predictor.
func (p *RatePredictor) Observe(ev *filter.Event) {
	for _, mp := range ev.Midplanes {
		p.score[mp] = p.decayed(mp, ev.First) + 1
		p.last[mp] = ev.First
	}
}

// Alarmed implements Predictor.
func (p *RatePredictor) Alarmed(mp int, t time.Time) bool {
	return p.decayed(mp, t) >= p.Threshold
}

// ChainPredictor alarms the midplanes of the most recent fatal event
// for a fixed window — the "failed nodes will fail again until
// repaired" heuristic behind the paper's job-related redundancy.
type ChainPredictor struct {
	// Window is how long after an event its midplanes stay alarmed.
	Window time.Duration

	until [bgp.NumMidplanes]time.Time
}

// NewChainPredictor returns a chain predictor with the given window.
func NewChainPredictor(window time.Duration) *ChainPredictor {
	return &ChainPredictor{Window: window}
}

// Name implements Predictor.
func (p *ChainPredictor) Name() string { return fmt.Sprintf("chain(window=%s)", p.Window) }

// Reset implements Predictor.
func (p *ChainPredictor) Reset() { p.until = [bgp.NumMidplanes]time.Time{} }

// Observe implements Predictor.
func (p *ChainPredictor) Observe(ev *filter.Event) {
	horizon := ev.First.Add(p.Window)
	for _, mp := range ev.Midplanes {
		if horizon.After(p.until[mp]) {
			p.until[mp] = horizon
		}
	}
}

// Alarmed implements Predictor.
func (p *ChainPredictor) Alarmed(mp int, t time.Time) bool {
	return !p.until[mp].IsZero() && !t.After(p.until[mp])
}

// NeverPredictor is the null baseline: no alarms.
type NeverPredictor struct{}

// Name implements Predictor.
func (NeverPredictor) Name() string { return "never" }

// Observe implements Predictor.
func (NeverPredictor) Observe(*filter.Event) {}

// Alarmed implements Predictor.
func (NeverPredictor) Alarmed(int, time.Time) bool { return false }

// Reset implements Predictor.
func (NeverPredictor) Reset() {}

// AlwaysPredictor alarms everything: the upper bound on recall and the
// lower bound on usefulness.
type AlwaysPredictor struct{}

// Name implements Predictor.
func (AlwaysPredictor) Name() string { return "always" }

// Observe implements Predictor.
func (AlwaysPredictor) Observe(*filter.Event) {}

// Alarmed implements Predictor.
func (AlwaysPredictor) Alarmed(int, time.Time) bool { return true }

// Reset implements Predictor.
func (AlwaysPredictor) Reset() {}
