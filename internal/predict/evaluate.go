package predict

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/filter"
	"repro/internal/joblog"
)

// Result scores one predictor over a replayed event stream.
type Result struct {
	// Predictor is the scored predictor's name.
	Predictor string
	// Hits counts events whose origin midplane was alarmed when they
	// struck (true positives).
	Hits int
	// Misses counts events that struck unalarmed midplanes.
	Misses int
	// Recall is Hits / (Hits + Misses).
	Recall float64
	// AlarmMidplaneHours integrates how long midplanes spent alarmed —
	// the proactive-action budget the predictor demands.
	AlarmMidplaneHours float64
	// Precision is Hits per alarmed midplane-day: how much alarm time
	// one true hit costs. Higher is better.
	HitsPerAlarmDay float64
	// IdleHits counts true positives where no job was running at the
	// location — the §VII point: with location information these
	// proactive actions can be skipped entirely.
	IdleHits int
	// AvoidableActionFraction is IdleHits / Hits.
	AvoidableActionFraction float64
}

// Evaluate replays the time-ordered events through the predictor: at
// each event it first asks whether the event's midplanes were alarmed
// (scoring), then lets the predictor observe the event. Alarm time is
// integrated on a fixed grid. jobs supplies occupancy for the
// idle-location analysis (may be nil).
func Evaluate(p Predictor, events []*filter.Event, jobs *joblog.Log) (Result, error) {
	if len(events) == 0 {
		return Result{}, fmt.Errorf("predict: no events")
	}
	p.Reset()
	res := Result{Predictor: p.Name()}

	const grid = time.Hour
	start := events[0].First
	end := events[len(events)-1].First
	next := 0
	for t := start; !t.After(end); t = t.Add(grid) {
		// Feed events up to t.
		for next < len(events) && !events[next].First.After(t) {
			ev := events[next]
			next++
			alarmed := false
			for _, mp := range ev.Midplanes {
				if p.Alarmed(mp, ev.First) {
					alarmed = true
					break
				}
			}
			if alarmed {
				res.Hits++
				if jobs != nil && len(jobs.RunningAt(ev.First)) > 0 {
					idle := true
					for _, mp := range ev.Midplanes {
						if len(jobs.RunningOn(ev.First, mp)) > 0 {
							idle = false
							break
						}
					}
					if idle {
						res.IdleHits++
					}
				} else if jobs != nil {
					res.IdleHits++
				}
			} else {
				res.Misses++
			}
			p.Observe(ev)
		}
		// Integrate alarm load on the grid.
		for mp := 0; mp < bgp.NumMidplanes; mp++ {
			if p.Alarmed(mp, t) {
				res.AlarmMidplaneHours += grid.Hours()
			}
		}
	}
	// Score any trailing events past the last grid point.
	for next < len(events) {
		ev := events[next]
		next++
		alarmed := false
		for _, mp := range ev.Midplanes {
			if p.Alarmed(mp, ev.First) {
				alarmed = true
				break
			}
		}
		if alarmed {
			res.Hits++
		} else {
			res.Misses++
		}
		p.Observe(ev)
	}

	if res.Hits+res.Misses > 0 {
		res.Recall = float64(res.Hits) / float64(res.Hits+res.Misses)
	}
	if res.AlarmMidplaneHours > 0 {
		res.HitsPerAlarmDay = float64(res.Hits) / (res.AlarmMidplaneHours / 24)
	}
	if res.Hits > 0 {
		res.AvoidableActionFraction = float64(res.IdleHits) / float64(res.Hits)
	}
	return res, nil
}

// Compare evaluates several predictors over the same stream.
func Compare(ps []Predictor, events []*filter.Event, jobs *joblog.Log) ([]Result, error) {
	out := make([]Result, 0, len(ps))
	for _, p := range ps {
		r, err := Evaluate(p, events, jobs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
