package linescan

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

// decodeLines decodes every line into "line:content" strings, the
// simplest shard that exposes line numbering and ordering.
func decodeLines(opts Options) func() ShardFunc[string] {
	return func() ShardFunc[string] {
		return func(chunk []byte, firstLine int) ([]string, error) {
			var out []string
			err := ForEachLine(chunk, firstLine, func(line []byte, n int) error {
				if bytes.Equal(line, []byte("BAD")) {
					return fmt.Errorf("line %d: bad", n)
				}
				if len(line) == 0 {
					return nil // blank lines are skipped, like the log readers
				}
				out = append(out, fmt.Sprintf("%d:%s", n, line))
				return nil
			})
			return out, err
		}
	}
}

func seqDecode(t *testing.T, in string) ([]string, error) {
	t.Helper()
	// The oracle: a plain bufio.Scanner walk with the same skip rules.
	s := bufio.NewScanner(strings.NewReader(in))
	var out []string
	n := 0
	for s.Scan() {
		n++
		line := s.Text()
		if line == "BAD" {
			return out, fmt.Errorf("line %d: bad", n)
		}
		if line == "" {
			continue
		}
		out = append(out, fmt.Sprintf("%d:%s", n, line))
	}
	if err := s.Err(); err != nil {
		return out, err
	}
	return out, nil
}

func buildInput(lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch i % 7 {
		case 3:
			b.WriteString("\n") // blank line
		case 5:
			fmt.Fprintf(&b, "padded-%d-%s\n", i, strings.Repeat("x", i%97))
		default:
			fmt.Fprintf(&b, "rec-%d\n", i)
		}
	}
	return b.String()
}

func TestDecodeAllMatchesSequential(t *testing.T) {
	inputs := []string{
		"",
		"\n",
		"one",
		"one\n",
		"a\nb\nc",
		"a\r\nb\r\n", // CR-LF must match bufio.ScanLines
		buildInput(500),
		buildInput(2000),
	}
	for _, in := range inputs {
		want, wantErr := seqDecode(t, in)
		for _, workers := range []int{1, 2, 3, 8} {
			for _, chunk := range []int{1, 7, 64, 1 << 20} {
				got, err := DecodeAll(strings.NewReader(in), Options{Workers: workers, ChunkBytes: chunk}, decodeLines(Options{}))
				if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
					t.Fatalf("w=%d chunk=%d: err %v, want %v", workers, chunk, err, wantErr)
				}
				if len(got) != len(want) {
					t.Fatalf("w=%d chunk=%d len(in)=%d: got %d lines, want %d", workers, chunk, len(in), len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("w=%d chunk=%d: line %d = %q, want %q", workers, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestDecodeAllErrorMatchesSequential(t *testing.T) {
	in := buildInput(100) + "BAD\n" + buildInput(50)
	want, wantErr := seqDecode(t, in)
	if wantErr == nil {
		t.Fatal("oracle did not error")
	}
	for _, workers := range []int{1, 4} {
		got, err := DecodeAll(strings.NewReader(in), Options{Workers: workers, ChunkBytes: 64}, decodeLines(Options{}))
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("w=%d: err %v, want %v", workers, err, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("w=%d: %d values before error, want %d", workers, len(got), len(want))
		}
	}
}

func TestDecodeAllTooLongLine(t *testing.T) {
	in := "ok-1\nok-2\n" + strings.Repeat("y", MaxLineBytes+DefaultChunkBytes+2)
	_, err := DecodeAll(strings.NewReader(in), Options{Workers: 2}, decodeLines(Options{}))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("want bufio.ErrTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

// errReader fails mid-stream; the failure must surface after the values
// decoded before it.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestDecodeAllReadError(t *testing.T) {
	boom := errors.New("boom")
	got, err := DecodeAll(&errReader{data: []byte("a\nb\nc\n"), err: boom}, Options{Workers: 2, ChunkBytes: 4}, decodeLines(Options{}))
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if len(got) != 3 {
		t.Errorf("decoded %d values before the read error, want 3", len(got))
	}
}

func TestDecodeAllNoProgressReader(t *testing.T) {
	_, err := DecodeAll(io.MultiReader(strings.NewReader("a\n"), neverReader{}), Options{Workers: 1}, decodeLines(Options{}))
	if !errors.Is(err, io.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}

type neverReader struct{}

func (neverReader) Read(p []byte) (int, error) { return 0, nil }

func TestShardStateIsPerWorker(t *testing.T) {
	// Each worker slot must get its own shard; a shared counter would
	// race (caught under -race) and break the per-shard invariant.
	in := buildInput(1000)
	var made atomic.Int64
	_, err := DecodeAll(strings.NewReader(in), Options{Workers: 4, ChunkBytes: 128}, func() ShardFunc[int] {
		made.Add(1)
		seen := 0
		return func(chunk []byte, firstLine int) ([]int, error) {
			seen++
			return []int{seen}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n < 1 || n > 4 {
		t.Errorf("made %d shards, want 1..4", n)
	}
}
