// Package linescan is the bounded-memory substrate of the streaming log
// codecs: it cuts an io.Reader into chunks that end on line boundaries
// and fans the chunks out to the internal/parallel pool, so a
// multi-gigabyte log is decoded by concurrent shard workers while only
// a few chunk buffers are resident at any moment.
//
// The determinism contract matches internal/parallel: chunk boundaries
// depend only on the byte stream and the configured chunk size, shard
// outputs are merged in chunk order (index-keyed, like the filter
// cascade's tag merge), and the first parse error — with its 1-based
// line number — is exactly the one a sequential scan of the same input
// would report. The decoded result is byte-identical for any worker
// count, including 1.
package linescan

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/parallel"
)

// MaxLineBytes caps a single log line. The sequential readers impose
// the same cap through bufio.Scanner's buffer limit; both paths surface
// an over-long line as an error wrapping bufio.ErrTooLong that names
// the offending line.
const MaxLineBytes = 4 * 1024 * 1024

// DefaultChunkBytes is the target chunk size of the parallel decode:
// large enough to amortize dispatch, small enough that workers×chunks
// stays far below campaign scale.
const DefaultChunkBytes = 1 << 20

// TooLongError returns the error both the sequential readers and the
// parallel chunker report for a line exceeding the cap, wrapping
// bufio.ErrTooLong so callers can errors.Is on it.
func TooLongError(line int) error {
	return fmt.Errorf("line %d: %w (line exceeds %d bytes)", line, bufio.ErrTooLong, MaxLineBytes)
}

// Options tunes DecodeAll. The zero value selects GOMAXPROCS workers
// and DefaultChunkBytes chunks.
type Options struct {
	// Workers follows the module-wide Parallelism convention
	// (0 = GOMAXPROCS, 1 = sequential; see internal/parallel).
	Workers int
	// ChunkBytes is the target chunk size; chunks grow past it only to
	// reach the next line boundary. 0 selects DefaultChunkBytes.
	ChunkBytes int
}

// ShardFunc decodes one chunk of whole lines whose first line has the
// given 1-based number. On a malformed line it returns the values
// decoded before the error plus an error naming the line, exactly as a
// sequential scan would.
type ShardFunc[T any] func(chunk []byte, firstLine int) ([]T, error)

// shardOut pairs one chunk's decoded values with its parse error, so
// the wave merge can recover sequential error semantics.
type shardOut[T any] struct {
	vals []T
	err  error
}

// DecodeAll streams r through newShard-produced workers in waves of at
// most Workers chunks and merges the decoded values in chunk order.
// Each worker slot calls newShard once and reuses the returned ShardFunc
// across waves, so shards may keep worker-local state (e.g. string
// intern tables); newShard itself may be called from concurrent
// goroutines and must not touch shared mutable state. Reads stay bounded: one wave of chunk buffers is
// resident at a time. The returned slice and error match a sequential
// decode of the same stream byte for byte.
func DecodeAll[T any](r io.Reader, opts Options, newShard func() ShardFunc[T]) ([]T, error) {
	w := parallel.Workers(opts.Workers)
	size := opts.ChunkBytes
	if size <= 0 {
		size = DefaultChunkBytes
	}
	if size > MaxLineBytes {
		size = MaxLineBytes
	}
	c := &chunker{r: r, chunkBytes: size, line: 1}
	shards := make([]ShardFunc[T], w)
	var out []T
	for {
		// Cut the next wave of chunks sequentially.
		type chunk struct {
			data      []byte
			firstLine int
		}
		var wave []chunk
		var readErr error
		for len(wave) < w {
			data, firstLine, err := c.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			wave = append(wave, chunk{data, firstLine})
		}
		if len(wave) == 0 {
			return out, readErr
		}
		outs, _ := parallel.Map(context.Background(), w, len(wave), func(i int) (shardOut[T], error) {
			if shards[i] == nil {
				shards[i] = newShard()
			}
			vals, err := shards[i](wave[i].data, wave[i].firstLine)
			return shardOut[T]{vals: vals, err: err}, nil
		})
		for _, so := range outs {
			out = append(out, so.vals...)
			if so.err != nil {
				// Sequential semantics: values decoded before the first bad
				// line survive, everything after it is discarded.
				return out, so.err
			}
		}
		if readErr != nil {
			return out, readErr
		}
	}
}

// ForEachLine iterates the whole lines of a chunk, calling fn with each
// line (trailing \r stripped, to match bufio.ScanLines) and its 1-based
// number. A final line without a trailing newline is still visited,
// matching bufio.Scanner. Iteration stops at fn's first error.
func ForEachLine(chunk []byte, firstLine int, fn func(line []byte, n int) error) error {
	n := firstLine
	for len(chunk) > 0 {
		var line []byte
		if i := bytes.IndexByte(chunk, '\n'); i >= 0 {
			line, chunk = chunk[:i], chunk[i+1:]
		} else {
			line, chunk = chunk, nil
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if err := fn(line, n); err != nil {
			return err
		}
		n++
	}
	return nil
}

// chunker cuts the stream into line-aligned chunks. Not safe for
// concurrent use; DecodeAll drives it from one goroutine.
type chunker struct {
	r          io.Reader
	chunkBytes int
	carry      []byte // partial trailing line of the previous chunk
	line       int    // 1-based number of the next chunk's first line
	err        error  // sticky read error (io.EOF included)
	zeroReads  int    // consecutive (0, nil) reads, for the no-progress guard
}

// next returns the next line-aligned chunk and the 1-based number of
// its first line. The returned buffer is freshly allocated and owned by
// the caller (chunks of one wave are parsed concurrently). Returns
// io.EOF after the last chunk.
func (c *chunker) next() ([]byte, int, error) {
	if len(c.carry) == 0 && c.err != nil {
		return nil, 0, c.err
	}
	buf := make([]byte, 0, c.chunkBytes+len(c.carry))
	buf = append(buf, c.carry...)
	c.carry = nil
	for len(buf) < c.chunkBytes && c.err == nil {
		buf = c.fill(buf)
	}
	// Cut at the last line boundary; grow when the chunk is one giant
	// partial line.
	cut := bytes.LastIndexByte(buf, '\n')
	for cut < 0 && c.err == nil {
		if len(buf) > MaxLineBytes {
			return nil, 0, TooLongError(c.line)
		}
		grown := c.fill(buf)
		cut = lastIndexFrom(grown, len(buf))
		buf = grown
	}
	if cut < 0 {
		if len(buf) > MaxLineBytes {
			return nil, 0, TooLongError(c.line)
		}
		if len(buf) == 0 {
			if c.err != nil {
				return nil, 0, c.err
			}
			return nil, 0, io.EOF
		}
		// Final line without a trailing newline.
		first := c.line
		c.line++
		return buf, first, nil
	}
	c.carry = append([]byte(nil), buf[cut+1:]...)
	data := buf[:cut+1]
	first := c.line
	c.line += bytes.Count(data, nlSep)
	return data, first, nil
}

var nlSep = []byte{'\n'}

// fill reads once into buf's spare capacity (growing it when full) and
// records a sticky error.
func (c *chunker) fill(buf []byte) []byte {
	if len(buf) == cap(buf) {
		grown := make([]byte, len(buf), cap(buf)+c.chunkBytes)
		copy(grown, buf)
		buf = grown
	}
	n, err := c.r.Read(buf[len(buf):cap(buf)])
	if n > 0 {
		buf = buf[:len(buf)+n]
		c.zeroReads = 0
	} else if err == nil {
		// Tolerate sporadic (0, nil) reads like bufio does, but refuse to
		// spin on a reader that never makes progress.
		if c.zeroReads++; c.zeroReads >= 100 {
			c.err = io.ErrNoProgress
		}
	}
	if err != nil {
		c.err = err
	}
	return buf
}

// lastIndexFrom finds the last '\n' at or after position from.
func lastIndexFrom(b []byte, from int) int {
	if i := bytes.LastIndexByte(b[from:], '\n'); i >= 0 {
		return from + i
	}
	return -1
}
