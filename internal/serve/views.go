package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/symtab"
)

// Epoch is one published, immutable view of the analysis. Everything
// reachable from it is private to the epoch or never mutated again:
// the analysis holds a symtab clone, the job log and occupancy index
// were frozen at snapshot time, and the segments are sealed (or a
// frozen copy of the active tail). Query payloads are marshaled once
// at publication; report fragments render lazily, once each.
type Epoch struct {
	// Seq numbers publications from 1.
	Seq uint64
	// WatermarkNS is the cascade watermark (Unix ns) at snapshot time.
	WatermarkNS int64
	// Analysis is the full co-analysis behind the views.
	Analysis *core.Analysis
	// Report renders the paper's artifacts over this epoch.
	Report *repro.Report
	// Segments is the frozen columnar store view.
	Segments []*store.Segment
	// Stats are the raw-stream aggregates at snapshot time.
	Stats repro.LogStats

	summary []byte
	queries map[string][]byte
	frags   map[string]*fragment
}

type fragment struct {
	once sync.Once
	body []byte
	err  error
}

// queryNames backs QueryNames: allocated once, never mutated.
var queryNames = []string{"rates", "mtbf", "interruptions", "vulnerability"}

// QueryNames lists the JSON query views every epoch precomputes.
// Callers must not mutate the returned slice.
func QueryNames() []string { return queryNames }

// newEpoch precomputes the JSON query payloads and prepares the lazy
// fragment cache.
func newEpoch(seq uint64, watermark int64, a *core.Analysis, rep *repro.Report,
	segs []*store.Segment, stats repro.LogStats) *Epoch {
	ep := &Epoch{
		Seq:         seq,
		WatermarkNS: watermark,
		Analysis:    a,
		Report:      rep,
		Segments:    segs,
		Stats:       stats,
		queries:     make(map[string][]byte, 4),
		frags:       make(map[string]*fragment, len(artifacts)),
	}
	for name := range artifacts {
		ep.frags[name] = &fragment{}
	}
	ep.summary = mustJSON(ep.buildSummary())
	ep.queries["rates"] = mustJSON(ep.buildRates())
	ep.queries["mtbf"] = mustJSON(ep.buildMTBF())
	ep.queries["interruptions"] = mustJSON(ep.buildInterruptions())
	ep.queries["vulnerability"] = mustJSON(ep.buildVulnerability())
	return ep
}

// artifacts is the fragment registry shared with cmd/coanalyze.
var artifacts = repro.Artifacts()

// Summary returns the /v1/epoch payload.
func (ep *Epoch) Summary() []byte { return ep.summary }

// Query returns the named precomputed query payload.
func (ep *Epoch) Query(name string) ([]byte, bool) {
	b, ok := ep.queries[name]
	return b, ok
}

// Fragment renders (once) and returns the named report fragment —
// byte-identical to the batch tools' output for the same logs once the
// engine has quiesced.
func (ep *Epoch) Fragment(name string) ([]byte, error) {
	fr, ok := ep.frags[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown artifact %q", name)
	}
	fr.once.Do(func() {
		var buf bytes.Buffer
		if err := artifacts[name](ep.Report, &buf); err != nil {
			fr.err = err
			return
		}
		fr.body = buf.Bytes()
	})
	return fr.body, fr.err
}

// FragmentNames returns the renderable artifact names, sorted.
func (ep *Epoch) FragmentNames() []string {
	out := make([]string, 0, len(ep.frags))
	for name := range ep.frags {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EpochSummary is the /v1/epoch payload.
type EpochSummary struct {
	Epoch          uint64 `json:"epoch"`
	WatermarkNS    int64  `json:"watermark_ns"`
	SpanStart      string `json:"span_start"`
	SpanEnd        string `json:"span_end"`
	Days           int    `json:"days"`
	RASRecords     int    `json:"ras_records"`
	FatalRecords   int    `json:"fatal_records"`
	FilteredEvents int    `json:"filtered_events"`
	Interruptions  int    `json:"interruptions"`
	Jobs           int    `json:"jobs"`
	Segments       int    `json:"segments"`
	SealedSegments int    `json:"sealed_segments"`
	Rows           int    `json:"rows"`
}

func (ep *Epoch) buildSummary() EpochSummary {
	start, end := ep.Analysis.Span()
	sealed, rows := 0, 0
	// s.Len(), not s.Events.Len(): a sealed segment may have spilled its
	// columns since this epoch was published, but its seal-time row
	// count is immutable.
	for _, s := range ep.Segments {
		rows += s.Len()
		if s.Sealed() {
			sealed++
		}
	}
	return EpochSummary{
		Epoch:          ep.Seq,
		WatermarkNS:    ep.WatermarkNS,
		SpanStart:      start.UTC().Format(time.RFC3339),
		SpanEnd:        end.UTC().Format(time.RFC3339),
		Days:           spanDays(start, end),
		RASRecords:     ep.Stats.RASRecords,
		FatalRecords:   ep.Stats.FatalRecords,
		FilteredEvents: len(ep.Analysis.Events),
		Interruptions:  len(ep.Analysis.Interruptions),
		Jobs:           ep.Analysis.Jobs.Len(),
		Segments:       len(ep.Segments),
		SealedSegments: sealed,
		Rows:           rows,
	}
}

// ErrcodeRate is one row of the /v1/query/rates payload.
type ErrcodeRate struct {
	Errcode       string  `json:"errcode"`
	Events        int     `json:"events"`
	Records       int     `json:"records"`
	PerDay        float64 `json:"per_day"`
	Interruptions int     `json:"interruptions"`
}

type ratesPayload struct {
	Epoch uint64        `json:"epoch"`
	Days  int           `json:"days"`
	Total int           `json:"total_events"`
	Rates []ErrcodeRate `json:"rates"`
}

func (ep *Epoch) buildRates() ratesPayload {
	a := ep.Analysis
	start, end := a.Span()
	days := spanDays(start, end)
	type acc struct {
		events, records, inter int
	}
	byCode := make(map[symtab.ErrcodeID]*acc)
	for _, ev := range a.Events {
		c := byCode[ev.Code]
		if c == nil {
			c = &acc{}
			byCode[ev.Code] = c
		}
		c.events++
		c.records += ev.Size
	}
	for _, in := range a.Interruptions {
		byCode[in.Event.Code].inter++
	}
	out := ratesPayload{Epoch: ep.Seq, Days: days, Total: len(a.Events)}
	for code, c := range byCode {
		r := ErrcodeRate{
			Errcode:       a.Syms.Errcodes.Name(code),
			Events:        c.events,
			Records:       c.records,
			Interruptions: c.inter,
		}
		if days > 0 {
			r.PerDay = float64(c.events) / float64(days)
		}
		out.Rates = append(out.Rates, r)
	}
	sort.Slice(out.Rates, func(i, j int) bool {
		if out.Rates[i].Events != out.Rates[j].Events {
			return out.Rates[i].Events > out.Rates[j].Events
		}
		return out.Rates[i].Errcode < out.Rates[j].Errcode
	})
	return out
}

// mtbfPayload is the /v1/query/mtbf payload: systemwide fatal-event
// interarrival fits before and after job-related filtering. Error is
// set (and the numbers zero) when the sample is too small to fit.
type mtbfPayload struct {
	Epoch              uint64  `json:"epoch"`
	Error              string  `json:"error,omitempty"`
	BeforeN            int     `json:"before_n"`
	AfterN             int     `json:"after_n"`
	BeforeMTBFHours    float64 `json:"before_mtbf_hours"`
	AfterMTBFHours     float64 `json:"after_mtbf_hours"`
	BeforeWeibullHours float64 `json:"before_weibull_mean_hours"`
	AfterWeibullHours  float64 `json:"after_weibull_mean_hours"`
	MTBFRatio          float64 `json:"mtbf_ratio"`
}

func (ep *Epoch) buildMTBF() mtbfPayload {
	out := mtbfPayload{Epoch: ep.Seq}
	fc, err := ep.Analysis.FailureCharacteristics()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	const hour = 3600
	out.BeforeN = fc.Before.N
	out.AfterN = fc.After.N
	out.BeforeMTBFHours = fc.Before.SampleMean / hour
	out.AfterMTBFHours = fc.After.SampleMean / hour
	out.BeforeWeibullHours = fc.Before.Weibull.Mean() / hour
	out.AfterWeibullHours = fc.After.Weibull.Mean() / hour
	out.MTBFRatio = fc.MTBFRatio
	return out
}

// interruptionsPayload is the /v1/query/interruptions payload: the
// cause breakdown of matched job interruptions.
type interruptionsPayload struct {
	Epoch                    uint64  `json:"epoch"`
	Total                    int     `json:"total"`
	DistinctJobs             int     `json:"distinct_jobs"`
	System                   int     `json:"system"`
	Application              int     `json:"application"`
	SystemTypes              int     `json:"system_types"`
	ApplicationTypes         int     `json:"application_types"`
	ApplicationEventFraction float64 `json:"application_event_fraction"`
}

func (ep *Epoch) buildInterruptions() interruptionsPayload {
	a := ep.Analysis
	c := a.ClassificationCensus()
	return interruptionsPayload{
		Epoch:                    ep.Seq,
		Total:                    len(a.Interruptions),
		DistinctJobs:             a.DistinctInterruptedJobs(),
		System:                   c.SystemInterruptions,
		Application:              c.ApplicationInterruptions,
		SystemTypes:              c.SystemTypes,
		ApplicationTypes:         c.ApplicationTypes,
		ApplicationEventFraction: c.ApplicationEventFraction,
	}
}

// vulnCell is one cell of the /v1/query/vulnerability payload.
type vulnCell struct {
	Interrupted int     `json:"interrupted"`
	Total       int     `json:"total"`
	Proportion  float64 `json:"proportion"`
}

type vulnerabilityPayload struct {
	Epoch     uint64       `json:"epoch"`
	Sizes     []int        `json:"sizes"`
	BinEdges  []float64    `json:"runtime_bin_edges_sec"`
	Cells     [][]vulnCell `json:"cells"`
	RowTotals []vulnCell   `json:"row_totals"`
	ColTotals []vulnCell   `json:"col_totals"`
	Grand     vulnCell     `json:"grand"`
}

func (ep *Epoch) buildVulnerability() vulnerabilityPayload {
	vt := ep.Analysis.Vulnerability()
	conv := func(c core.VulnerabilityCell) vulnCell {
		return vulnCell{Interrupted: c.Interrupted, Total: c.Total, Proportion: c.Proportion()}
	}
	convRow := func(cs []core.VulnerabilityCell) []vulnCell {
		out := make([]vulnCell, len(cs))
		for i, c := range cs {
			out[i] = conv(c)
		}
		return out
	}
	out := vulnerabilityPayload{
		Epoch:     ep.Seq,
		Sizes:     vt.Sizes,
		BinEdges:  vt.BinEdges,
		RowTotals: convRow(vt.RowTotals),
		ColTotals: convRow(vt.ColTotals),
		Grand:     conv(vt.Grand),
	}
	out.Cells = make([][]vulnCell, len(vt.Cells))
	for i, row := range vt.Cells {
		out.Cells[i] = convRow(row)
	}
	return out
}

// spanDays mirrors the batch report's day count (repro.analyzeStores).
func spanDays(start, end time.Time) int {
	return int(end.Sub(start).Hours()/24) + 1
}

// mustJSON marshals a payload built from plain structs; a marshal
// failure is a programming error.
func mustJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("serve: marshaling query payload: %v", err))
	}
	return append(b, '\n')
}
