package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

// campaignStreams returns a simulated campaign's records and jobs
// after one marshal/parse round trip, so the on-disk persistence round
// trip inside the engine is idempotent relative to the test input.
func campaignStreams(t *testing.T, seed int64, days int) ([]raslog.Record, []joblog.Job) {
	t.Helper()
	camp, err := simulate.Run(simulate.Config{Seed: seed, Days: days, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := raslog.NewReader(bytes.NewReader(marshalRAS(t, camp.RAS.All()))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := joblog.NewReader(bytes.NewReader(marshalJobs(t, camp.Jobs.All()))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs, jobs
}

// checkEnginesEqual publishes both engines and requires identical
// epoch summaries, query payloads and report fragments.
func checkEnginesEqual(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	gotEp, gotErr := got.Publish()
	wantEp, wantErr := want.Publish()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: publish errors diverge: got %v, want %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !bytes.Equal(gotEp.Summary(), wantEp.Summary()) {
		t.Fatalf("%s: epoch summaries differ:\n got: %s\nwant: %s", label, gotEp.Summary(), wantEp.Summary())
	}
	for _, q := range QueryNames() {
		g, _ := gotEp.Query(q)
		w, _ := wantEp.Query(q)
		if !bytes.Equal(g, w) {
			t.Errorf("%s: query %s differs:\n got: %s\nwant: %s", label, q, g, w)
		}
	}
	for _, name := range gotEp.FragmentNames() {
		g, gerr := gotEp.Fragment(name)
		w, werr := wantEp.Fragment(name)
		if (gerr == nil) != (werr == nil) {
			t.Errorf("%s: fragment %s errors diverge: got %v, want %v", label, name, gerr, werr)
			continue
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s: fragment %s differs (%d vs %d bytes)", label, name, len(g), len(w))
		}
	}
}

// TestRecoveryEqualsUninterrupted kills an engine mid-segment and
// requires the recovered engine to equal a fresh engine that ingested
// exactly the committed (sealed) prefix — the unsealed tail is the
// only loss.
func TestRecoveryEqualsUninterrupted(t *testing.T) {
	recs, jobs := campaignStreams(t, 11, 8)
	dir := t.TempDir()

	// cut marks the committed prefix: everything before it is ingested
	// and explicitly sealed; everything after is ingested but never
	// sealed (the mid-segment tail a crash loses).
	rasCut, jobCut := 2*len(recs)/3, 2*len(jobs)/3

	eng1, err := NewEngine(Config{DataDir: dir, SealRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(e *Engine, upToRAS, upToJob int) {
		t.Helper()
		// Interleave in fixed-size batches so auto-seals land at the
		// same rows for every engine fed the same prefix.
		for i := 0; i < upToRAS; i += 200 {
			end := min(i+200, upToRAS)
			if err := e.IngestRAS(recs[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < upToJob; i += 150 {
			end := min(i+150, upToJob)
			if err := e.IngestJobs(jobs[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(eng1, rasCut, jobCut)
	if err := eng1.Seal(); err != nil {
		t.Fatal(err)
	}
	// The doomed tail: ingested, acknowledged in memory, never sealed.
	if err := eng1.IngestRAS(recs[rasCut:]); err != nil {
		t.Fatal(err)
	}
	if err := eng1.IngestJobs(jobs[jobCut:]); err != nil {
		t.Fatal(err)
	}
	// Crash: eng1 is abandoned without Seal or shutdown.

	eng2, err := NewEngine(Config{DataDir: dir, SealRows: 128})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	ref, err := NewEngine(Config{SealRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	feed(ref, rasCut, jobCut)
	// Match eng1's explicit pre-crash Seal so segment boundaries (and
	// thus epoch summaries) line up; without a DataDir this only closes
	// the active segment.
	if err := ref.Seal(); err != nil {
		t.Fatal(err)
	}
	checkEnginesEqual(t, "recovered vs uninterrupted", eng2, ref)

	// The recovered engine keeps ingesting from its cursor: replaying
	// the tail must be accepted and produce the full-campaign state.
	full, err := NewEngine(Config{SealRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	feed(full, len(recs), len(jobs))
	// eng2 lost the tail, so its cursor admits the tail records again.
	if err := eng2.IngestRAS(recs[rasCut:]); err != nil {
		t.Fatal(err)
	}
	if err := eng2.IngestJobs(jobs[jobCut:]); err != nil {
		t.Fatal(err)
	}
	// eng2's explicit seal happened at the cut, so its segment
	// boundaries differ from full's; compare the analyses via their
	// report fragments, which see events, not segments.
	gotEp, err := eng2.Publish()
	if err != nil {
		t.Fatal(err)
	}
	wantEp, err := full.Publish()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t1", "t2", "t3", "t4", "pipeline", "obs1", "t6"} {
		g, gerr := gotEp.Fragment(name)
		w, werr := wantEp.Fragment(name)
		if (gerr == nil) != (werr == nil) || !bytes.Equal(g, w) {
			t.Errorf("resumed ingest: fragment %s diverges (err %v vs %v)", name, gerr, werr)
		}
	}
}

// TestRecoverySealFaults injects persistence faults at every step of
// the seal write path and checks that (a) a failed seal surfaces as an
// error without corrupting the committed prefix, (b) recovery sees
// only committed segments, and (c) retrying the seal succeeds and
// commits everything.
func TestRecoverySealFaults(t *testing.T) {
	recs, jobs := campaignStreams(t, 13, 6)
	for _, failStep := range []string{"ras", "job", "manifest"} {
		t.Run(failStep, func(t *testing.T) {
			dir := t.TempDir()
			failing := true
			eng, err := NewEngine(Config{
				DataDir:  dir,
				SealRows: 1 << 20, // no auto-seals; the test drives sealing
				SealHook: func(step string) error {
					if failing && step == failStep {
						return errors.New("injected fault at " + step)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			half := len(recs) / 2
			if err := eng.IngestRAS(recs[:half]); err != nil {
				t.Fatal(err)
			}
			if err := eng.IngestJobs(jobs[:half]); err != nil {
				t.Fatal(err)
			}
			err = eng.Seal()
			if err == nil || !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("Seal with %s fault: err = %v, want injected fault", failStep, err)
			}

			// Recovery must see no committed segment: the manifest is
			// the commit record and was never written.
			if _, err := os.Stat(filepath.Join(dir, "seg-000000.json")); !os.IsNotExist(err) {
				t.Fatalf("manifest exists after failed seal (stat err %v)", err)
			}
			crashed, err := NewEngine(Config{DataDir: dir, SealRows: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if got := crashed.inc.Input(); got != 0 {
				t.Fatalf("recovery after failed seal found %d cascade records, want 0", got)
			}

			// The live engine is not corrupted: the seal stays queued
			// and a retry (fault cleared) commits it.
			failing = false
			if err := eng.Seal(); err != nil {
				t.Fatalf("retry Seal: %v", err)
			}
			recovered, err := NewEngine(Config{DataDir: dir, SealRows: 1 << 20})
			if err != nil {
				t.Fatalf("recovery after retried seal: %v", err)
			}
			ref, err := NewEngine(Config{SealRows: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.IngestRAS(recs[:half]); err != nil {
				t.Fatal(err)
			}
			if err := ref.IngestJobs(jobs[:half]); err != nil {
				t.Fatal(err)
			}
			// Close the reference's active segment so both sides publish
			// the same sealed-segment census.
			if err := ref.Seal(); err != nil {
				t.Fatal(err)
			}
			checkEnginesEqual(t, "after retried seal", recovered, ref)
		})
	}
}

// TestRecoveryEmptyDir pins that a data directory with no committed
// segments recovers to an empty engine.
func TestRecoveryEmptyDir(t *testing.T) {
	eng, err := NewEngine(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if eng.inc.Input() != 0 || len(eng.jobs) != 0 {
		t.Fatalf("empty-dir recovery produced state: %d records, %d jobs", eng.inc.Input(), len(eng.jobs))
	}
}
