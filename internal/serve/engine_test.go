package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

func marshalRAS(t testing.TB, recs []raslog.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := raslog.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func marshalJobs(t testing.TB, jobs []joblog.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := joblog.NewWriter(&buf)
	for _, j := range jobs {
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeMatchesBatch is the serve-vs-batch equivalence gate: a
// campaign is POSTed to a live server in randomized batches while
// query goroutines hammer every endpoint (run it under -race — `make
// race` does); after quiescing, every report fragment must be
// byte-identical to the batch pipeline's render of the same logs.
func TestServeMatchesBatch(t *testing.T) {
	camp, err := simulate.Run(simulate.Config{Seed: 5, Days: 12, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rasAll := camp.RAS.All()
	jobsAll := camp.Jobs.All()

	// Batch reference over the identical byte streams.
	ref, err := repro.Load(repro.Config{},
		bytes.NewReader(marshalRAS(t, rasAll)), bytes.NewReader(marshalJobs(t, jobsAll)))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(Config{SealRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng))
	defer ts.Close()

	// Query hammer: every read endpoint, continuously, while ingest and
	// publications run. Readers only require coherent responses (one of
	// the expected statuses, parseable bodies) — byte equality is
	// checked after quiescing.
	paths := append([]string{"/v1/epoch", "/healthz", "/v1/report/t1", "/v1/report/obs1", "/v1/report/f3"},
		func() []string {
			var qs []string
			for _, q := range QueryNames() {
				qs = append(qs, "/v1/query/"+q)
			}
			return qs
		}()...)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g // stagger the endpoints per goroutine
			for {
				select {
				case <-done:
					return
				default:
				}
				url := ts.URL + paths[i%len(paths)]
				i++
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable:
				default:
					t.Errorf("GET %s: unexpected status %d: %s", url, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	// Ingest the campaign in randomized batches, publishing every so
	// often mid-stream (early publications may 409 on an empty job log).
	rng := rand.New(rand.NewSource(42))
	ri, ji, batches := 0, 0, 0
	for ri < len(rasAll) || ji < len(jobsAll) {
		if ji >= len(jobsAll) || (ri < len(rasAll) && rng.Intn(2) == 0) {
			n := 1 + rng.Intn(400)
			if ri+n > len(rasAll) {
				n = len(rasAll) - ri
			}
			if status, body := post(t, ts.URL+"/v1/ingest/ras", marshalRAS(t, rasAll[ri:ri+n])); status != http.StatusOK {
				t.Fatalf("ingest/ras: status %d: %s", status, body)
			}
			ri += n
		} else {
			n := 1 + rng.Intn(50)
			if ji+n > len(jobsAll) {
				n = len(jobsAll) - ji
			}
			if status, body := post(t, ts.URL+"/v1/ingest/job", marshalJobs(t, jobsAll[ji:ji+n])); status != http.StatusOK {
				t.Fatalf("ingest/job: status %d: %s", status, body)
			}
			ji += n
		}
		if batches++; batches%40 == 0 {
			if status, body := post(t, ts.URL+"/v1/publish", nil); status != http.StatusOK && status != http.StatusConflict {
				t.Fatalf("publish: status %d: %s", status, body)
			}
		}
	}

	status, body := post(t, ts.URL+"/v1/quiesce", nil)
	if status != http.StatusOK {
		t.Fatalf("quiesce: status %d: %s", status, body)
	}
	close(done)
	wg.Wait()

	var sum EpochSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("quiesce summary: %v", err)
	}
	if sum.RASRecords != len(rasAll) || sum.Jobs != len(jobsAll) {
		t.Fatalf("quiesced epoch saw %d records / %d jobs, want %d / %d",
			sum.RASRecords, sum.Jobs, len(rasAll), len(jobsAll))
	}

	// Byte-identical report fragments. The one artifact that re-runs
	// the cascade over the raw store ("sweep") is structurally
	// unavailable to a streaming report and must say so.
	for name, render := range repro.Artifacts() {
		status, got := get(t, ts.URL+"/v1/report/"+name)
		if name == "sweep" {
			if status != http.StatusConflict {
				t.Errorf("report/sweep: status %d, want %d (streaming reports retain no raw store)", status, http.StatusConflict)
			}
			continue
		}
		var want bytes.Buffer
		if err := render(ref, &want); err != nil {
			if status != http.StatusConflict {
				t.Errorf("report/%s: batch render fails (%v) but serve status is %d", name, err, status)
			}
			continue
		}
		if status != http.StatusOK {
			t.Errorf("report/%s: status %d: %s", name, status, got)
			continue
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("report/%s: quiesced fragment differs from batch output (%d vs %d bytes)",
				name, len(got), want.Len())
		}
	}

	// Query payloads carry the quiesced epoch and parse cleanly.
	for _, q := range QueryNames() {
		status, got := get(t, ts.URL+"/v1/query/"+q)
		if status != http.StatusOK {
			t.Fatalf("query/%s: status %d: %s", q, status, got)
		}
		var m map[string]any
		if err := json.Unmarshal(got, &m); err != nil {
			t.Fatalf("query/%s: %v", q, err)
		}
		if got := m["epoch"].(float64); uint64(got) != sum.Epoch {
			t.Fatalf("query/%s: epoch %v, want %d", q, got, sum.Epoch)
		}
	}
}

// TestIngestBatchAtomicity pins all-or-nothing ingest: a batch with an
// internal ordering violation is rejected without any of its records
// (even the valid prefix) reaching the engine.
func TestIngestBatchAtomicity(t *testing.T) {
	camp, err := simulate.Run(simulate.Config{Seed: 9, Days: 4, NoisePerFatal: 0})
	if err != nil {
		t.Fatal(err)
	}
	recs := camp.RAS.All()
	if len(recs) < 10 {
		t.Fatalf("campaign too small: %d records", len(recs))
	}
	eng, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Valid prefix, then a regression in the same batch.
	bad := append(append([]raslog.Record(nil), recs[:5]...), recs[2])
	err = eng.IngestRAS(bad)
	oe, ok := err.(*OrderError)
	if !ok {
		t.Fatalf("IngestRAS(disordered) error = %v, want *OrderError", err)
	}
	if oe.Stream != "ras" || oe.Index != 5 {
		t.Fatalf("OrderError = %+v, want stream ras index 5", oe)
	}
	if !strings.Contains(oe.Error(), "nothing was applied") {
		t.Fatalf("OrderError text %q does not state atomicity", oe.Error())
	}
	if got := eng.inc.Input(); got != 0 {
		t.Fatalf("cascade saw %d records after a rejected batch, want 0", got)
	}
	if eng.stats.RASRecords != 0 || len(eng.pendRAS) != 0 || eng.segs.Rows() != 0 {
		t.Fatalf("engine state perturbed by rejected batch: %+v rows=%d", eng.stats, eng.segs.Rows())
	}

	// The same records in order are accepted afterwards.
	if err := eng.IngestRAS(recs); err != nil {
		t.Fatal(err)
	}
	fatal := 0
	for i := range recs {
		if recs[i].Fatal() {
			fatal++
		}
	}
	if got := eng.inc.Input(); got != fatal {
		t.Fatalf("cascade saw %d fatals, want %d", got, fatal)
	}

	// Jobs: same contract.
	jobs := camp.Jobs.All()
	badJobs := append(append([]joblog.Job(nil), jobs[:3]...), jobs[0])
	if _, ok := eng.IngestJobs(badJobs).(*OrderError); !ok {
		t.Fatalf("IngestJobs(disordered) did not return *OrderError")
	}
	if len(eng.jobs) != 0 {
		t.Fatalf("%d jobs applied from rejected batch, want 0", len(eng.jobs))
	}
	if err := eng.IngestJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if len(eng.jobs) != len(jobs) {
		t.Fatalf("%d jobs applied, want %d", len(eng.jobs), len(jobs))
	}
}

// TestPublishBeforeJobs pins the pre-first-epoch behavior: publishing
// with no jobs fails cleanly and leaves no epoch.
func TestPublishBeforeJobs(t *testing.T) {
	eng, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Publish(); err == nil {
		t.Fatal("Publish() on an empty engine succeeded, want error")
	}
	if ep := eng.Epoch(); ep != nil {
		t.Fatalf("failed publish left epoch %d", ep.Seq)
	}
}
