package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/store"
)

// Checkpoint layout: each sealed segment N owns three files in DataDir,
//
//	seg-N.ras   — the segment's FATAL records, one line each, feed order
//	seg-N.job   — the jobs accepted since the previous seal, feed order
//	seg-N.json  — the manifest: per-segment row counts plus the engine's
//	              CUMULATIVE counters and stream cursors at seal time
//
// written in that order, each via temp file + fsync + rename. The
// manifest is the commit record: recovery only trusts a segment whose
// manifest exists, so a crash mid-seal leaves at worst ignorable .ras/
// .job files (and .tmp debris) behind — never a half-visible segment.
//
// Raw non-fatal records are not persisted; they enter the analysis only
// through the aggregate counters (record/byte totals, span), which the
// manifest carries. Recovery therefore rebuilds the exact engine state
// of the last committed seal instant: replaying the fatal lines through
// the normal ingest path reproduces the cascade, symbol numbering and
// segment rows, and the manifest restores the aggregates and cursors.

// sealRecord pairs a sealed segment with the payload to persist for it.
type sealRecord struct {
	seg  *store.Segment
	ras  []raslog.Record
	jobs []joblog.Job
	man  manifest
}

// manifest is the per-segment commit record (schema field names are
// part of the on-disk format; extend, don't repurpose).
type manifest struct {
	Seq      int `json:"seq"`
	Rows     int `json:"rows"`
	JobCount int `json:"job_count"`

	// Cumulative raw-stream aggregates at seal time.
	RASRecords   int   `json:"ras_records"`
	RASBytes     int   `json:"ras_bytes"`
	FatalRecords int   `json:"fatal_records"`
	RASFirstNS   int64 `json:"ras_first_ns"`
	RASLastNS    int64 `json:"ras_last_ns"`

	// Stream cursors at seal time.
	LastRecTimeNS int64 `json:"last_rec_time_ns"`
	LastRecID     int64 `json:"last_rec_id"`

	// Segment row-time bounds (diagnostic; recovery recomputes them).
	MinTimeNS int64 `json:"min_time_ns"`
	MaxTimeNS int64 `json:"max_time_ns"`
}

// persister writes seal records under a data directory.
type persister struct {
	dir  string
	hook func(step string) error
}

func (p *persister) path(seq int, ext string) string {
	return filepath.Join(p.dir, fmt.Sprintf("seg-%06d.%s", seq, ext))
}

// writeSeal persists one sealed segment: records, jobs, then the
// manifest as the commit point.
func (p *persister) writeSeal(sr sealRecord) error {
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return err
	}
	if err := p.step("ras"); err != nil {
		return err
	}
	if err := writeFileSync(p.path(sr.man.Seq, "ras"), func(f *os.File) error {
		w := raslog.NewWriter(f)
		for _, r := range sr.ras {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		return w.Flush()
	}); err != nil {
		return err
	}
	if err := p.step("job"); err != nil {
		return err
	}
	if err := writeFileSync(p.path(sr.man.Seq, "job"), func(f *os.File) error {
		w := joblog.NewWriter(f)
		for _, j := range sr.jobs {
			if err := w.Write(j); err != nil {
				return err
			}
		}
		return w.Flush()
	}); err != nil {
		return err
	}
	if err := p.step("manifest"); err != nil {
		return err
	}
	return writeFileSync(p.path(sr.man.Seq, "json"), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(sr.man)
	})
}

func (p *persister) step(name string) error {
	if p.hook == nil {
		return nil
	}
	return p.hook(name)
}

// writeFileSync writes path atomically: a .tmp sibling is written,
// fsynced and renamed into place.
func writeFileSync(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// recover rebuilds the engine from the committed seals in DataDir, in
// sequence order, stopping at the first missing manifest. Replay goes
// through the same code paths as live ingest, so the recovered cascade
// state, symbol numbering and segment rows are identical to an engine
// that ingested exactly the committed prefix.
func (e *Engine) recover() error {
	var last *manifest
	var firstFatal raslog.Record
	haveFatal := false
	for seq := 0; ; seq++ {
		mb, err := os.ReadFile(e.per.path(seq, "json"))
		if os.IsNotExist(err) {
			break
		}
		if err != nil {
			return fmt.Errorf("serve: recovering segment %d: %w", seq, err)
		}
		var man manifest
		if err := json.Unmarshal(mb, &man); err != nil {
			return fmt.Errorf("serve: recovering segment %d: bad manifest: %w", seq, err)
		}

		recs, err := readRASFile(e.per.path(seq, "ras"))
		if err != nil {
			return fmt.Errorf("serve: recovering segment %d: %w", seq, err)
		}
		if len(recs) != man.Rows {
			return fmt.Errorf("serve: recovering segment %d: %d records on disk, manifest says %d",
				seq, len(recs), man.Rows)
		}
		seg := &store.Segment{}
		for i := range recs {
			rec := &recs[i]
			if err := e.inc.Feed(rec); err != nil {
				return fmt.Errorf("serve: recovering segment %d: %w", seq, err)
			}
			if !haveFatal {
				firstFatal, haveFatal = *rec, true
			}
			code := e.tab.Errcodes.Intern(rec.ErrCode)
			loc := e.tab.Locations.Intern(rec.Location)
			seg.AppendRow(rec.RecID, rec.EventTime.UnixNano(), code, loc,
				int32(rec.Component), int32(rec.Severity))
		}
		e.segs.Restore(seg)

		jobs, err := readJobFile(e.per.path(seq, "job"))
		if err != nil {
			return fmt.Errorf("serve: recovering segment %d: %w", seq, err)
		}
		if len(jobs) != man.JobCount {
			return fmt.Errorf("serve: recovering segment %d: %d jobs on disk, manifest says %d",
				seq, len(jobs), man.JobCount)
		}
		for _, j := range jobs {
			e.occ.Add(j)
			e.jobs = append(e.jobs, j)
			e.lastJobEnd, e.lastJobID = j.EndTime.UnixNano(), j.ID
		}
		last = &man
	}
	if last == nil {
		return nil
	}
	e.stats = repro.LogStats{
		RASRecords:   last.RASRecords,
		RASBytes:     last.RASBytes,
		FatalRecords: last.FatalRecords,
		FirstFatal:   firstFatal,
		HasFatal:     haveFatal,
	}
	e.rasFirst = nsTime(last.RASFirstNS)
	e.rasLast = nsTime(last.RASLastNS)
	e.lastRecTime = last.LastRecTimeNS
	e.lastRecID = last.LastRecID
	return nil
}

func readRASFile(path string) ([]raslog.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return raslog.NewReader(f).ReadAll()
}

func readJobFile(path string) ([]joblog.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return joblog.NewReader(f).ReadAll()
}
