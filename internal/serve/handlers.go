package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/raslog"
)

// maxBatchBytes bounds an ingest request body; a campaign is fed in
// many batches, not one giant POST.
const maxBatchBytes = 64 << 20

// Server is the HTTP face of an Engine.
//
// Endpoints:
//
//	POST /v1/ingest/ras    — body: RAS log lines; all-or-nothing batch
//	POST /v1/ingest/job    — body: job log lines; all-or-nothing batch
//	POST /v1/seal          — force-seal the active segment and flush
//	POST /v1/publish       — publish a new epoch from the live state
//	POST /v1/quiesce       — seal + publish (durable, fully consistent)
//	GET  /v1/epoch         — current epoch summary
//	GET  /v1/query/{name}  — rates | mtbf | interruptions | vulnerability
//	GET  /v1/report/{name} — rendered report fragment (text/plain)
//	GET  /v1/scan          — window profile over the segment set with
//	                         zone-map pushdown; params: from, to
//	                         (RFC 3339), code, loc
//	GET  /healthz          — liveness + current epoch number
//
// Queries are served from the last published epoch and return 503
// until the first publication. Errors are structured JSON:
// {"error": "...", "line": N} with line set for parse failures.
type Server struct {
	e   *Engine
	mux *http.ServeMux
}

// NewServer wraps an engine.
func NewServer(e *Engine) *Server {
	s := &Server{e: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/ingest/ras", s.ingestRAS)
	s.mux.HandleFunc("POST /v1/ingest/job", s.ingestJob)
	s.mux.HandleFunc("POST /v1/seal", s.seal)
	s.mux.HandleFunc("POST /v1/publish", s.publish)
	s.mux.HandleFunc("POST /v1/quiesce", s.quiesce)
	s.mux.HandleFunc("GET /v1/epoch", s.epoch)
	s.mux.HandleFunc("GET /v1/query/{name}", s.query)
	s.mux.HandleFunc("GET /v1/report/{name}", s.report)
	s.mux.HandleFunc("GET /v1/scan", s.scan)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the structured error body.
type apiError struct {
	Error string `json:"error"`
	Line  int    `json:"line,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, line int, format string, args ...any) {
	b, _ := json.Marshal(apiError{Error: fmt.Sprintf(format, args...), Line: line})
	writeJSON(w, status, append(b, '\n'))
}

func (s *Server) ingestRAS(w http.ResponseWriter, r *http.Request) {
	rd := raslog.NewReader(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	recs, err := rd.ReadAll()
	if err != nil {
		// The decoder stops at the first bad line; nothing reaches the
		// engine, so the batch has no partial effect.
		writeError(w, http.StatusBadRequest, rd.Line()+1, "parsing RAS batch: %v", err)
		return
	}
	if err := s.e.IngestRAS(recs); err != nil {
		status := http.StatusConflict
		line := 0
		if oe, ok := err.(*OrderError); ok {
			line = oe.Index + 1
		} else {
			status = http.StatusInternalServerError
		}
		writeError(w, status, line, "%v", err)
		return
	}
	fatal := 0
	for i := range recs {
		if recs[i].Fatal() {
			fatal++
		}
	}
	b, _ := json.Marshal(map[string]any{"accepted": len(recs), "fatal": fatal})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

func (s *Server) ingestJob(w http.ResponseWriter, r *http.Request) {
	rd := joblog.NewReader(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	jobs, err := rd.ReadAll()
	if err != nil {
		writeError(w, http.StatusBadRequest, rd.Line()+1, "parsing job batch: %v", err)
		return
	}
	if err := s.e.IngestJobs(jobs); err != nil {
		status := http.StatusConflict
		line := 0
		if oe, ok := err.(*OrderError); ok {
			line = oe.Index + 1
		} else {
			status = http.StatusInternalServerError
		}
		writeError(w, status, line, "%v", err)
		return
	}
	b, _ := json.Marshal(map[string]any{"accepted": len(jobs)})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

func (s *Server) seal(w http.ResponseWriter, _ *http.Request) {
	if err := s.e.Seal(); err != nil {
		writeError(w, http.StatusInternalServerError, 0, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, []byte("{\"sealed\":true}\n"))
}

func (s *Server) publish(w http.ResponseWriter, _ *http.Request) {
	ep, err := s.e.Publish()
	if err != nil {
		writeError(w, http.StatusConflict, 0, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ep.Summary())
}

func (s *Server) quiesce(w http.ResponseWriter, _ *http.Request) {
	ep, err := s.e.Quiesce()
	if err != nil {
		writeError(w, http.StatusConflict, 0, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ep.Summary())
}

// current returns the published epoch or writes the 503 that precedes
// the first publication.
func (s *Server) current(w http.ResponseWriter) *Epoch {
	ep := s.e.Epoch()
	if ep == nil {
		writeError(w, http.StatusServiceUnavailable, 0, "no epoch published yet (POST /v1/publish after ingesting)")
		return nil
	}
	return ep
}

func (s *Server) epoch(w http.ResponseWriter, _ *http.Request) {
	if ep := s.current(w); ep != nil {
		writeJSON(w, http.StatusOK, ep.Summary())
	}
}

func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	ep := s.current(w)
	if ep == nil {
		return
	}
	name := r.PathValue("name")
	body, ok := ep.Query(name)
	if !ok {
		writeError(w, http.StatusNotFound, 0, "unknown query %q; want one of %s",
			name, strings.Join(QueryNames(), ", "))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	ep := s.current(w)
	if ep == nil {
		return
	}
	name := r.PathValue("name")
	body, err := ep.Fragment(name)
	if err != nil {
		if _, known := ep.frags[name]; !known {
			writeError(w, http.StatusNotFound, 0, "unknown artifact %q; want one of %s",
				name, strings.Join(ep.FragmentNames(), ", "))
			return
		}
		writeError(w, http.StatusConflict, 0, "rendering %s: %v", name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// scanPayload is the /v1/scan response: the window profile plus what
// the pushdown scan touched (skipped counts segments refuted by zone
// maps alone).
type scanPayload struct {
	Profile  core.WindowProfile `json:"profile"`
	Segments int                `json:"segments"`
	Skipped  int                `json:"skipped"`
	Scanned  int                `json:"scanned"`
}

func (s *Server) scan(w http.ResponseWriter, r *http.Request) {
	var cfg core.WindowConfig
	q := r.URL.Query()
	if v := q.Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, 0, "bad from time %q: %v", v, err)
			return
		}
		cfg.From = t
	}
	if v := q.Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, 0, "bad to time %q: %v", v, err)
			return
		}
		cfg.To = t
	}
	cfg.Code = q.Get("code")
	cfg.Loc = q.Get("loc")
	prof, stats, err := s.e.ScanWindow(cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, 0, "%v", err)
		return
	}
	b, _ := json.Marshal(scanPayload{
		Profile:  prof,
		Segments: stats.Segments,
		Skipped:  stats.Skipped,
		Scanned:  stats.Scanned,
	})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	var seq uint64
	if ep := s.e.Epoch(); ep != nil {
		seq = ep.Seq
	}
	b, _ := json.Marshal(map[string]any{"ok": true, "epoch": seq})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
