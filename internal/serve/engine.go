// Package serve is the long-running co-analysis service behind cmd/bgpd:
// it ingests RAS and job events continuously, maintains the filter
// cascade and the downstream analyses incrementally, and answers
// concurrent queries from immutable published views.
//
// The design separates three concerns with three locks-or-less:
//
//   - Ingest mutates the live state (incremental cascade, occupancy
//     builder, segment set, symbol table) under the engine mutex. A
//     batch is validated in full before any of it is applied, so a
//     rejected batch leaves the engine exactly as it was.
//   - Publish snapshots the live state under the same mutex — O(unsealed
//     tail), not O(history) — then runs the expensive analysis stages
//     outside it, so readers and ingesters never wait on a fit. The
//     result is an Epoch: a self-contained, immutable view (private
//     symtab clone, frozen occupancy, sealed segments shared by
//     pointer) swapped in atomically.
//   - Queries read whatever Epoch pointer is current. Every response is
//     consistent with exactly one publication; nothing a reader touches
//     is ever written again.
//
// A quiesced engine (all input ingested, then Quiesce) publishes an
// epoch whose report fragments are byte-identical to the batch
// pipeline's output over the same logs — the equivalence the
// incremental cascade (filter.Incremental) and streaming analysis
// entry point (core.AnalyzeStream) are built around, and which
// TestServeMatchesBatch pins under the race detector.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// Config parameterizes an Engine.
type Config struct {
	// Analysis holds the co-analysis thresholds; zero values take the
	// batch defaults (core.DefaultConfig semantics via AnalyzeStream).
	Analysis core.Config
	// SealRows is the segment row budget (0 = store.DefaultSealRows).
	SealRows int
	// DataDir, when non-empty, enables checkpoint persistence: every
	// sealed segment is written there (records, jobs, manifest) before
	// the ingest that sealed it is acknowledged, and NewEngine recovers
	// the sealed prefix from it after a crash.
	DataDir string
	// SealHook, when non-nil, is called before each persistence step
	// ("ras", "job", "manifest") with the step name; returning an error
	// aborts the seal at that point. It exists for fault-injection
	// tests.
	SealHook func(step string) error
	// MemBudget, when positive, bounds the resident column payload (in
	// bytes): after each persisted seal, sealed segments past the budget
	// are committed to DataDir as columnar segment files (oldest first)
	// and their in-memory columns dropped. Scans reload them on demand
	// through the zone-map-filtered reader. Requires DataDir — the spill
	// files live next to the checkpoint files.
	MemBudget int64
}

// Engine is the serving core. All exported methods are safe for
// concurrent use.
type Engine struct {
	cfg Config

	mu    sync.Mutex
	tab   *symtab.Table
	inc   *filter.Incremental
	occ   core.OccupancyBuilder
	jobs  []joblog.Job
	stats repro.LogStats
	segs  store.SegmentSet

	// rasFirst/rasLast span ALL ingested RAS records (noise included),
	// matching the batch pipeline's use of the full store's span.
	rasFirst, rasLast time.Time
	// lastRecTime/lastRecID is the ordering cursor over the full RAS
	// stream; batches must be nondecreasing in (EventTime, RecID).
	lastRecTime int64
	lastRecID   int64
	// lastJobEnd/lastJobID is the job-stream cursor; accepting jobs in
	// (EndTime, ID) order is what makes the live occupancy builder
	// reproduce the batch byEnd order (and hence its sort permutation)
	// exactly.
	lastJobEnd int64
	lastJobID  int64

	// pendRAS/pendJobs accumulate since the last seal; when a segment
	// seals they become its persisted payload. unpersisted queues seals
	// whose files have not been durably written yet (a failed write
	// keeps them queued for retry; recovery never sees them).
	pendRAS     []raslog.Record
	pendJobs    []joblog.Job
	unpersisted []sealRecord
	per         *persister
	// dirty records whether anything was ingested since the last seal's
	// manifest; Seal uses it to decide whether an empty checkpoint
	// segment is needed to commit the residue.
	dirty bool

	// pubMu serializes publications; epoch is the read side.
	pubMu    sync.Mutex
	epochSeq uint64
	epoch    atomic.Pointer[Epoch]
}

// NewEngine builds an engine and, when cfg.DataDir is set, recovers the
// sealed prefix persisted there.
func NewEngine(cfg Config) (*Engine, error) {
	// A zero cascade config means "the paper's thresholds", exactly as
	// the batch entry points default it — the cascade runs at Feed
	// time, so the defaulting cannot be left to AnalyzeStream.
	if cfg.Analysis.Filter == (filter.Config{}) {
		cfg.Analysis.Filter = filter.DefaultConfig()
	}
	tab := symtab.NewTable()
	e := &Engine{
		cfg:  cfg,
		tab:  tab,
		inc:  filter.NewIncremental(cfg.Analysis.Filter, tab),
		segs: store.SegmentSet{SealRows: cfg.SealRows},
	}
	if cfg.MemBudget > 0 && cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: MemBudget requires DataDir (spilled segments need a home)")
	}
	if cfg.DataDir != "" {
		e.per = &persister{dir: cfg.DataDir, hook: cfg.SealHook}
		if err := e.recover(); err != nil {
			return nil, err
		}
		// Recovery rebuilds every sealed segment resident; re-apply the
		// budget before serving.
		if err := e.maybeSpill(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// OrderError reports a batch that violates stream ordering. The batch
// was NOT applied — ingest is all-or-nothing.
type OrderError struct {
	// Stream is "ras" or "job"; Index is the offending batch position.
	Stream string
	Index  int
	Detail string
}

func (e *OrderError) Error() string {
	return fmt.Sprintf("serve: %s batch record %d out of order: %s (batch rejected; nothing was applied)",
		e.Stream, e.Index, e.Detail)
}

// IngestRAS applies one batch of RAS records, which must be sorted by
// (EventTime, RecID) and start no earlier than the engine's cursor.
// The whole batch is validated before any record is applied; on error
// the engine state is unchanged. Segments sealed by the batch are
// persisted (when DataDir is set) before IngestRAS returns — that is
// the durability boundary.
func (e *Engine) IngestRAS(recs []raslog.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	last, lastID := e.lastRecTime, e.lastRecID
	for i := range recs {
		t := recs[i].EventTime.UnixNano()
		if t < last || (t == last && recs[i].RecID < lastID) {
			return &OrderError{Stream: "ras", Index: i, Detail: fmt.Sprintf(
				"RECID %d at %s behind cursor (%s, RECID %d)",
				recs[i].RecID, recs[i].EventTime.UTC().Format(time.RFC3339Nano),
				time.Unix(0, last).UTC().Format(time.RFC3339Nano), lastID)}
		}
		last, lastID = t, recs[i].RecID
	}

	var sealErr error
	for i := range recs {
		rec := &recs[i]
		e.dirty = true
		e.stats.ObserveRAS(rec)
		if e.rasFirst.IsZero() {
			e.rasFirst = rec.EventTime
		}
		e.rasLast = rec.EventTime
		e.lastRecTime = rec.EventTime.UnixNano()
		e.lastRecID = rec.RecID
		if !rec.Fatal() {
			continue
		}
		if err := e.inc.Feed(rec); err != nil {
			// Unreachable: the batch was validated against the cascade's
			// exact admission rule above.
			return fmt.Errorf("serve: internal: %w", err)
		}
		e.pendRAS = append(e.pendRAS, *rec)
		code := e.tab.Errcodes.Intern(rec.ErrCode)
		loc := e.tab.Locations.Intern(rec.Location)
		sealed := e.segs.Append(rec.RecID, rec.EventTime.UnixNano(), code, loc,
			int32(rec.Component), int32(rec.Severity))
		if sealed != nil {
			if err := e.queueSeal(sealed); err != nil && sealErr == nil {
				sealErr = err
			}
		}
	}
	return sealErr
}

// IngestJobs applies one batch of job records, which must be sorted by
// (EndTime, ID) and not regress behind previously accepted jobs. Like
// IngestRAS it is all-or-nothing.
func (e *Engine) IngestJobs(jobs []joblog.Job) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	last, lastID := e.lastJobEnd, e.lastJobID
	for i := range jobs {
		t := jobs[i].EndTime.UnixNano()
		if t < last || (t == last && jobs[i].ID < lastID) {
			return &OrderError{Stream: "job", Index: i, Detail: fmt.Sprintf(
				"job %d ending %s behind cursor (%s, job %d)",
				jobs[i].ID, jobs[i].EndTime.UTC().Format(time.RFC3339Nano),
				time.Unix(0, last).UTC().Format(time.RFC3339Nano), lastID)}
		}
		last, lastID = t, jobs[i].ID
	}
	for _, j := range jobs {
		e.dirty = true
		e.occ.Add(j)
		e.jobs = append(e.jobs, j)
		e.pendJobs = append(e.pendJobs, j)
		e.lastJobEnd, e.lastJobID = j.EndTime.UnixNano(), j.ID
	}
	return nil
}

// queueSeal records a freshly sealed segment together with the pending
// records and jobs that belong to it, then tries to flush the
// unpersisted queue. Called with e.mu held.
func (e *Engine) queueSeal(seg *store.Segment) error {
	sr := sealRecord{
		seg:  seg,
		ras:  e.pendRAS,
		jobs: e.pendJobs,
		man: manifest{
			Seq:           seg.Seq,
			Rows:          seg.Len(),
			JobCount:      len(e.pendJobs),
			RASRecords:    e.stats.RASRecords,
			RASBytes:      e.stats.RASBytes,
			FatalRecords:  e.stats.FatalRecords,
			RASFirstNS:    timeNS(e.rasFirst),
			RASLastNS:     timeNS(e.rasLast),
			LastRecTimeNS: e.lastRecTime,
			LastRecID:     e.lastRecID,
			MinTimeNS:     seg.MinTime,
			MaxTimeNS:     seg.MaxTime,
		},
	}
	e.pendRAS = nil
	e.pendJobs = nil
	e.dirty = false
	if e.per == nil {
		return nil
	}
	e.unpersisted = append(e.unpersisted, sr)
	if err := e.flushSeals(); err != nil {
		return err
	}
	// Spill only after the seal is durably persisted: the spill file is
	// a cache of the checkpointed rows, never the only copy.
	return e.maybeSpill()
}

// maybeSpill enforces the memory budget by committing the oldest
// resident sealed segments to DataDir and dropping their columns; zone
// state stays resident so scans keep skipping them for free. Called
// with e.mu held.
func (e *Engine) maybeSpill() error {
	if e.cfg.MemBudget <= 0 {
		return nil
	}
	_, err := e.segs.SpillOver(e.cfg.MemBudget, e.cfg.DataDir,
		e.tab.Errcodes.Name, e.tab.Locations.Name)
	if err != nil {
		return fmt.Errorf("serve: spilling segments: %w", err)
	}
	return nil
}

// ScanWindow runs a window profile directly against the segment set
// with zone-map pushdown: segments outside the window (or without a
// matching severity/code/location) are skipped from their resident
// zone state, spilled segments that survive the check are reloaded on
// demand. It reads the live set under the ingest lock, so the profile
// is consistent with a single ingest boundary.
func (e *Engine) ScanWindow(cfg core.WindowConfig) (core.WindowProfile, store.ScanStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var prof core.WindowProfiler
	stats, err := e.segs.Scan(cfg.Query(), e.tab, func(row store.Row) error {
		prof.Observe(row)
		return nil
	})
	if err != nil {
		return core.WindowProfile{}, stats, fmt.Errorf("serve: window scan: %w", err)
	}
	return prof.Profile(), stats, nil
}

// flushSeals writes queued seals in order, stopping at the first
// failure (the remainder stays queued for the next attempt). Called
// with e.mu held.
func (e *Engine) flushSeals() error {
	for len(e.unpersisted) > 0 {
		if err := e.per.writeSeal(e.unpersisted[0]); err != nil {
			return fmt.Errorf("serve: persisting segment %d: %w", e.unpersisted[0].man.Seq, err)
		}
		e.unpersisted = e.unpersisted[1:]
	}
	return nil
}

// Seal force-seals the active segment (even under budget) and flushes
// every unpersisted seal. A clean shutdown calls it so the whole
// ingested history becomes the recoverable prefix. When records were
// ingested since the last seal but none produced a filtered row (a
// noise-only or jobs-only stretch), an empty checkpoint segment is
// sealed instead: its manifest is what commits the cumulative
// counters, cursors and pending jobs.
func (e *Engine) Seal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seg := e.segs.Seal(); seg != nil {
		return e.queueSeal(seg)
	}
	if e.dirty {
		return e.queueSeal(e.segs.SealEmpty())
	}
	return e.flushSeals()
}

// Epoch returns the most recently published epoch, or nil before the
// first successful Publish.
func (e *Engine) Epoch() *Epoch { return e.epoch.Load() }

// Publish snapshots the live state and builds a new epoch from it. The
// snapshot itself is cheap and runs under the ingest lock; the
// analysis (matching, identification, classification, fits) runs
// outside it against immutable data, so ingest continues concurrently.
// Publications are serialized; each gets the next epoch sequence.
func (e *Engine) Publish() (*Epoch, error) {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()

	e.mu.Lock()
	events, fstats := e.inc.Snapshot()
	tab := e.tab.Clone()
	occ := e.occ.Snapshot()
	jobs := e.jobs[:len(e.jobs):len(e.jobs)]
	stats := e.stats
	segs := e.segs.Snapshot()
	rasFirst, rasLast := e.rasFirst, e.rasLast
	watermark := e.inc.Watermark()
	seq := e.epochSeq + 1
	e.mu.Unlock()

	jl := joblog.NewLog(jobs)
	jFirst, jLast := jl.Span()
	start, end := core.UnionSpan(rasFirst, rasLast, jFirst, jLast)
	a, err := core.AnalyzeStream(e.cfg.Analysis, core.StreamInput{
		Tab:         tab,
		Events:      events,
		FilterStats: fstats,
		Jobs:        jl,
		Occupancy:   occ,
		SpanStart:   start,
		SpanEnd:     end,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: epoch %d: %w", seq, err)
	}
	rep := repro.NewStreamReport(a, jl, stats)
	ep := newEpoch(seq, watermark, a, rep, segs, stats)

	e.mu.Lock()
	e.epochSeq = seq
	e.mu.Unlock()
	e.epoch.Store(ep)
	return ep, nil
}

// Quiesce seals and persists everything ingested so far, then
// publishes. After Quiesce returns, the current epoch reflects every
// acknowledged record and the whole history is recoverable.
func (e *Engine) Quiesce() (*Epoch, error) {
	if err := e.Seal(); err != nil {
		return nil, err
	}
	return e.Publish()
}

// timeNS converts a time to Unix nanoseconds, mapping the zero time to
// 0 so manifests round-trip it (campaign timestamps are nowhere near
// 1970, so the conflation is harmless).
func timeNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nsTime is the inverse of timeNS.
func nsTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}
