package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/simulate"
)

// TestSpillEquivalence is the serve-side bounded-memory gate: the same
// campaign is ingested into a fully resident engine and into one whose
// MemBudget forces most sealed segments onto disk, while scan
// goroutines hammer /v1/scan on the spilling engine (run under -race —
// `make race` does). After quiescing, every report fragment and every
// window profile must be identical across the two engines, and the
// spilling engine must actually have spilled.
func TestSpillEquivalence(t *testing.T) {
	camp, err := simulate.Run(simulate.Config{Seed: 21, Days: 12, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rasAll := camp.RAS.All()
	jobsAll := camp.Jobs.All()

	resident, err := NewEngine(Config{SealRows: 128, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Budget of two segments' worth of rows: every older seal spills.
	budget := int64(2 * 128 * 32)
	spDir := t.TempDir()
	spilling, err := NewEngine(Config{SealRows: 128, DataDir: spDir, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(spilling))
	defer ts.Close()

	// Scan hammer against the spilling engine while it ingests and
	// spills: responses must stay coherent (200s with parseable bodies).
	done := make(chan struct{})
	var wg sync.WaitGroup
	windows := []string{
		"",
		"?from=" + rasAll[0].EventTime.UTC().Format(time.RFC3339),
		"?to=" + rasAll[len(rasAll)/2].EventTime.UTC().Format(time.RFC3339),
		"?code=" + rasAll[0].ErrCode,
		"?loc=nowhere",
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/scan" + windows[i%len(windows)])
				i++
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scan: status %d: %s", resp.StatusCode, body)
					return
				}
				var p scanPayload
				if err := json.Unmarshal(body, &p); err != nil {
					t.Errorf("scan payload: %v", err)
					return
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(8))
	ri, ji := 0, 0
	for ri < len(rasAll) || ji < len(jobsAll) {
		if ji >= len(jobsAll) || (ri < len(rasAll) && rng.Intn(2) == 0) {
			n := 1 + rng.Intn(300)
			if ri+n > len(rasAll) {
				n = len(rasAll) - ri
			}
			batch := rasAll[ri : ri+n]
			if err := resident.IngestRAS(batch); err != nil {
				t.Fatal(err)
			}
			if err := spilling.IngestRAS(batch); err != nil {
				t.Fatal(err)
			}
			ri += n
		} else {
			n := 1 + rng.Intn(40)
			if ji+n > len(jobsAll) {
				n = len(jobsAll) - ji
			}
			batch := jobsAll[ji : ji+n]
			if err := resident.IngestJobs(batch); err != nil {
				t.Fatal(err)
			}
			if err := spilling.IngestJobs(batch); err != nil {
				t.Fatal(err)
			}
			ji += n
		}
	}
	close(done)
	wg.Wait()

	epR, err := resident.Quiesce()
	if err != nil {
		t.Fatal(err)
	}
	epS, err := spilling.Quiesce()
	if err != nil {
		t.Fatal(err)
	}
	var sumR, sumS EpochSummary
	if err := json.Unmarshal(epR.Summary(), &sumR); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(epS.Summary(), &sumS); err != nil {
		t.Fatal(err)
	}
	if sumR.RASRecords != len(rasAll) || sumS.RASRecords != len(rasAll) {
		t.Fatalf("epochs saw %d / %d records, want %d", sumR.RASRecords, sumS.RASRecords, len(rasAll))
	}

	// The budget must have done real work.
	spilling.mu.Lock()
	spilled := 0
	for _, s := range spilling.segs.Sealed() {
		if s.Spilled() {
			spilled++
		}
	}
	residentBytes := spilling.segs.ResidentBytes()
	spilling.mu.Unlock()
	if spilled == 0 {
		t.Fatal("MemBudget engine spilled nothing")
	}
	if residentBytes > budget {
		t.Fatalf("resident payload %d bytes exceeds budget %d after quiesce", residentBytes, budget)
	}

	// Identical report fragments, spilled or not: epoch analysis runs off
	// the cascade's event snapshot, which spilling never touches.
	for name := range repro.Artifacts() {
		want, errR := epR.Fragment(name)
		got, errS := epS.Fragment(name)
		if (errR == nil) != (errS == nil) {
			t.Errorf("report/%s: resident err %v, spilling err %v", name, errR, errS)
			continue
		}
		if errR == nil && !bytes.Equal(want, got) {
			t.Errorf("report/%s: spilling output differs from resident (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}

	// Identical window profiles, with the spilling engine answering some
	// of them from reloaded segment files.
	mid := rasAll[len(rasAll)/2].EventTime
	cfgs := []core.WindowConfig{
		{},
		{To: mid},
		{From: mid},
		{Code: rasAll[0].ErrCode},
		{Loc: "nowhere"},
	}
	for i, cfg := range cfgs {
		wantP, _, err := resident.ScanWindow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotP, stats, err := spilling.ScanWindow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantP, gotP) {
			t.Errorf("window %d: profile differs:\nresident %+v\nspilling %+v", i, wantP, gotP)
		}
		if cfg.Loc == "nowhere" && stats.Scanned != 0 {
			t.Errorf("window %d: %d segments scanned for an absent location", i, stats.Scanned)
		}
	}
}

// TestMemBudgetRequiresDataDir pins the config validation: a budget
// with nowhere to spill is a construction-time error, not a runtime
// surprise.
func TestMemBudgetRequiresDataDir(t *testing.T) {
	if _, err := NewEngine(Config{MemBudget: 1}); err == nil {
		t.Fatal("NewEngine accepted MemBudget without DataDir")
	}
}
