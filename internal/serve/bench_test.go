package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

// The bench fixture simulates one campaign and pre-marshals it into
// the wire bodies the ingest benchmarks POST, so the benchmarks
// measure the serve path (HTTP dispatch, parse, cascade feed, segment
// append) and not campaign generation.
var (
	benchOnce sync.Once
	benchFix  struct {
		rasBatches [][]byte
		jobBatches [][]byte
		rasRecs    int
		err        error
	}
)

const benchBatchRecords = 256

func benchBatches(b *testing.B) ([][]byte, [][]byte) {
	b.Helper()
	benchOnce.Do(func() {
		camp, err := simulate.Run(simulate.Config{Seed: 3, Days: 20, NoisePerFatal: 0.5})
		if err != nil {
			benchFix.err = err
			return
		}
		recs := camp.RAS.All()
		benchFix.rasRecs = len(recs)
		for i := 0; i < len(recs); i += benchBatchRecords {
			var buf bytes.Buffer
			w := raslog.NewWriter(&buf)
			for _, r := range recs[i:min(i+benchBatchRecords, len(recs))] {
				if err := w.Write(r); err != nil {
					benchFix.err = err
					return
				}
			}
			w.Flush()
			benchFix.rasBatches = append(benchFix.rasBatches, buf.Bytes())
		}
		jobs := camp.Jobs.All()
		for i := 0; i < len(jobs); i += benchBatchRecords {
			var buf bytes.Buffer
			w := joblog.NewWriter(&buf)
			for _, j := range jobs[i:min(i+benchBatchRecords, len(jobs))] {
				if err := w.Write(j); err != nil {
					benchFix.err = err
					return
				}
			}
			w.Flush()
			benchFix.jobBatches = append(benchFix.jobBatches, buf.Bytes())
		}
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.rasBatches, benchFix.jobBatches
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	eng, err := NewEngine(Config{SealRows: 4096})
	if err != nil {
		b.Fatal(err)
	}
	return NewServer(eng)
}

func benchPost(b *testing.B, srv *Server, path string, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("POST %s: status %d: %s", path, rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkServeIngest measures the cost of one POSTed ingest batch
// through the full server path. Ordering cursors forbid replaying the
// same batch, so the benchmark cycles through the campaign and swaps
// in a fresh engine (off the clock) whenever the campaign is spent.
func BenchmarkServeIngest(b *testing.B) {
	ras, jobs := benchBatches(b)
	srv := benchServer(b)
	ri, ji := 0, 0
	records := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ri == len(ras) {
			b.StopTimer()
			srv = benchServer(b)
			ri, ji = 0, 0
			b.StartTimer()
		}
		benchPost(b, srv, "/v1/ingest/ras", ras[ri])
		records += bytes.Count(ras[ri], []byte("\n"))
		ri++
		if ji < len(jobs) {
			benchPost(b, srv, "/v1/ingest/job", jobs[ji])
			records += bytes.Count(jobs[ji], []byte("\n"))
			ji++
		}
	}
	b.ReportMetric(float64(records)/float64(b.N), "records/op")
}

// BenchmarkServeQuery measures concurrent read throughput against one
// published epoch: every op is a GET across the query endpoints plus a
// rendered report fragment, the mix a dashboard poller generates.
func BenchmarkServeQuery(b *testing.B) {
	ras, jobs := benchBatches(b)
	srv := benchServer(b)
	for _, batch := range ras {
		benchPost(b, srv, "/v1/ingest/ras", batch)
	}
	for _, batch := range jobs {
		benchPost(b, srv, "/v1/ingest/job", batch)
	}
	benchPost(b, srv, "/v1/quiesce", nil)

	paths := append([]string{}, "/v1/epoch", "/v1/report/t1")
	for _, q := range QueryNames() {
		paths = append(paths, "/v1/query/"+q)
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			path := paths[next.Add(1)%uint64(len(paths))]
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.Bytes())
			}
		}
	})
}
