package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/raslog"
)

// fuzzBaseRecords returns a small valid batch used to give the engine
// a nonzero cursor before the fuzzed bodies arrive, so ordering
// rejections are reachable states.
func fuzzBaseRecords() []raslog.Record {
	base := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	recs := make([]raslog.Record, 4)
	for i := range recs {
		recs[i] = raslog.Record{
			RecID: int64(i + 1), MsgID: "KERN_0802", Component: raslog.CompKernel,
			ErrCode: "_bgp_unit_test", Severity: raslog.SevFatal,
			EventTime: base.Add(time.Duration(i) * time.Minute),
			Location:  "R00-M0",
		}
	}
	return recs
}

// engineShape is the observable ingest state the atomicity contract
// protects: a rejected batch must leave all of it untouched.
type engineShape struct {
	input, rows, jobs, pend int
	stats                   [3]int
	cursor                  [2]int64
}

func shapeOf(e *Engine) engineShape {
	e.mu.Lock()
	defer e.mu.Unlock()
	return engineShape{
		input:  e.inc.Input(),
		rows:   e.segs.Rows(),
		jobs:   len(e.jobs),
		pend:   len(e.pendRAS),
		stats:  [3]int{e.stats.RASRecords, e.stats.RASBytes, e.stats.FatalRecords},
		cursor: [2]int64{e.lastRecTime, e.lastRecID},
	}
}

// FuzzIngestBatch throws arbitrary bodies at both ingest endpoints and
// asserts the service-level contract: no panic, no 5xx, structured
// JSON errors carrying a line number for parse failures, and
// all-or-nothing application — a rejected batch leaves every piece of
// ingest state (cascade input, segment rows, aggregates, cursors)
// exactly as it was, so no partially applied batch can ever leak into
// a published epoch.
// FuzzSegmentSealRestore round-trips arbitrary RAS batches through the
// durability boundary: ingest → seal → persist → recover in a fresh
// engine. The recovered engine must carry the exact ingest state of the
// sealed prefix, and every restored segment must be immutable — sealed,
// capacity-clipped columns, and a panic on any further append.
func FuzzSegmentSealRestore(f *testing.F) {
	valid := fuzzBaseRecords()
	var validBody bytes.Buffer
	w := raslog.NewWriter(&validBody)
	for _, r := range valid {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()

	// Seeds: a valid batch at several seal budgets (mid-batch seals,
	// exact-budget seals, everything in the unsealed tail), truncations,
	// garbage, and the empty stream.
	f.Add(validBody.Bytes(), uint8(1))
	f.Add(validBody.Bytes(), uint8(2))
	f.Add(validBody.Bytes(), uint8(4))
	f.Add(validBody.Bytes(), uint8(100))
	f.Add(validBody.Bytes()[:validBody.Len()/2], uint8(1))
	f.Add([]byte("x|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg\n"), uint8(1))
	f.Add([]byte(""), uint8(1))

	f.Fuzz(func(t *testing.T, rasBody []byte, budget uint8) {
		sealRows := int(budget%8) + 1
		dir := t.TempDir()
		eng, err := NewEngine(Config{DataDir: dir, SealRows: sealRows})
		if err != nil {
			t.Fatal(err)
		}
		if recs, err := raslog.NewReader(bytes.NewReader(rasBody)).ReadAll(); err == nil {
			// Out-of-order batches are rejected whole; that is a valid
			// (empty) prefix to recover.
			_ = eng.IngestRAS(recs)
		}
		if err := eng.Seal(); err != nil {
			t.Fatalf("seal: %v", err)
		}
		want := shapeOf(eng)

		re, err := NewEngine(Config{DataDir: dir, SealRows: sealRows})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		if got := shapeOf(re); got != want {
			t.Fatalf("recovered engine state differs from sealed state:\nsealed    %+v\nrecovered %+v", want, got)
		}

		for _, seg := range re.segs.Sealed() {
			if !seg.Sealed() {
				t.Fatalf("restored segment %d is not sealed", seg.Seq)
			}
			e := &seg.Events
			if cap(e.RecID) != e.Len() || cap(e.Time) != e.Len() || cap(e.Code) != e.Len() ||
				cap(e.Loc) != e.Len() || cap(e.Comp) != e.Len() || cap(e.Sev) != e.Len() {
				t.Fatalf("restored segment %d has unclipped columns (len %d): caps %d/%d/%d/%d/%d/%d",
					seg.Seq, e.Len(), cap(e.RecID), cap(e.Time), cap(e.Code), cap(e.Loc), cap(e.Comp), cap(e.Sev))
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("AppendRow on restored segment %d did not panic", seg.Seq)
					}
				}()
				seg.AppendRow(1<<40, 1<<40, 0, 0, 1, 2)
			}()
		}
	})
}

func FuzzIngestBatch(f *testing.F) {
	valid := fuzzBaseRecords()
	var validBody bytes.Buffer
	w := raslog.NewWriter(&validBody)
	for _, r := range valid {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()

	// Seeds: a valid batch, truncations and corruptions of it, the line
	// parsers' classic near-misses, job lines POSTed as RAS and vice
	// versa, and ordering violations.
	f.Add(validBody.Bytes(), []byte("1|j1|/bin/app|2009-01-05-00.00.00.000000|2009-01-05-00.10.00.000000|2009-01-05-01.00.00.000000|R00:1|u|p\n"))
	f.Add(validBody.Bytes()[:validBody.Len()/2], []byte(""))
	f.Add([]byte(""), []byte(""))
	f.Add([]byte("x|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg\n"), []byte("0|||1|.001|1|R00||\n"))
	f.Add([]byte("1|M|KERNEL|s|c|LOUD|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg\n"), []byte("not|a|job\n"))
	f.Add(bytes.Repeat([]byte("|"), 64), bytes.Repeat([]byte("|"), 64))
	f.Add(append(append([]byte{}, validBody.Bytes()...), validBody.Bytes()...), []byte{0xff, 0xfe, 0x00})
	f.Add([]byte(strings.Repeat("A", 1<<16)+"\n"), []byte(strings.Repeat("A", 1<<16)))

	f.Fuzz(func(t *testing.T, rasBody, jobBody []byte) {
		eng, err := NewEngine(Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.IngestRAS(fuzzBaseRecords()); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(eng)

		for _, c := range []struct {
			path string
			body []byte
		}{
			{"/v1/ingest/ras", rasBody},
			{"/v1/ingest/job", jobBody},
		} {
			before := shapeOf(eng)
			req := httptest.NewRequest(http.MethodPost, c.path, bytes.NewReader(c.body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			after := shapeOf(eng)

			switch rec.Code {
			case http.StatusOK:
				var resp struct {
					Accepted int `json:"accepted"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatalf("POST %s: 200 body is not JSON: %v: %s", c.path, err, rec.Body.Bytes())
				}
				if c.path == "/v1/ingest/ras" {
					if got := after.stats[0] - before.stats[0]; got != resp.Accepted {
						t.Fatalf("POST %s: accepted %d but record count grew %d", c.path, resp.Accepted, got)
					}
				} else if got := after.jobs - before.jobs; got != resp.Accepted {
					t.Fatalf("POST %s: accepted %d but job count grew %d", c.path, resp.Accepted, got)
				}
			case http.StatusBadRequest, http.StatusConflict:
				if after != before {
					t.Fatalf("POST %s: status %d mutated engine state:\nbefore %+v\nafter  %+v\nbody %s",
						c.path, rec.Code, before, after, rec.Body.Bytes())
				}
				var ae apiError
				if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil || ae.Error == "" {
					t.Fatalf("POST %s: status %d without structured error (%v): %s",
						c.path, rec.Code, err, rec.Body.Bytes())
				}
				if rec.Code == http.StatusBadRequest && ae.Line < 1 {
					t.Fatalf("POST %s: parse failure without line number: %s", c.path, rec.Body.Bytes())
				}
			default:
				t.Fatalf("POST %s: unexpected status %d: %s", c.path, rec.Code, rec.Body.Bytes())
			}
		}
	})
}
