package sched

import (
	"time"

	"repro/internal/bgp"
)

// Placement policy: Intrepid steered small jobs to the outer midplanes
// (65–80 in the paper's 1-indexed numbering, plus short jobs on
// midplanes 1–2) and reserved the middle of the machine for wide
// capability jobs. The result is the inconsistent per-midplane workload
// the paper documents in Figure 4: raw workload peaks where small jobs
// run, while wide-job workload — and with it the fatal-event count —
// concentrates on midplanes 33–64 (0-indexed 32–63).
const (
	wideRegionLo = 32
	wideRegionHi = 64
	smallRegion  = 64 // small jobs prefer [64, 80)
	shortRegion  = 4  // and the first two racks [0, 4)
)

func init() {
	RegisterPolicy(DefaultPolicy, func() Policy { return intrepidPolicy{} })
}

// intrepidPolicy is the paper-documented Intrepid allocation behaviour
// — the golden-checked default. Every hook reproduces the pre-refactor
// engine byte for byte: identical placement choices and an identical
// RNG draw sequence.
type intrepidPolicy struct{}

func (intrepidPolicy) Name() string { return DefaultPolicy }

// Order is FIFO: Cobalt considered jobs in arrival order.
func (intrepidPolicy) Order(Env, []*waiting) {}

// Place applies the region policy to the (already filtered) free
// candidates for a job of the given width.
func (intrepidPolicy) Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	return placeIntrepid(env, cands, size)
}

// placeIntrepid is the shared region-policy placement; failure-aware
// reuses it over a filtered candidate list.
func placeIntrepid(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	switch {
	case size >= 32:
		// Maximize overlap with the wide region; ties to the highest
		// start so 48/64-wide blocks sit over [32, 64).
		best := cands[0]
		bestOv := -1
		for _, c := range cands {
			ov := overlap(c, wideRegionLo, wideRegionHi)
			if ov > bestOv || (ov == bestOv && c.Start > best.Start) {
				best, bestOv = c, ov
			}
		}
		return best, true
	case size <= 2:
		// Small jobs are confined to the outer small-job region and the
		// first two racks; when both are full they wait rather than
		// fragment the mid-machine (Cobalt's partition queues bind small
		// jobs to small named partitions). The pick within a region is
		// randomized — Cobalt walks its partition list in a
		// configuration order that is effectively arbitrary.
		if p, ok := randIn(cands, env.RNG(), func(c bgp.Partition) bool { return c.Start >= smallRegion }); ok {
			return p, true
		}
		if p, ok := randIn(cands, env.RNG(), func(c bgp.Partition) bool { return c.End() <= shortRegion }); ok {
			return p, true
		}
		return bgp.Partition{}, false
	default:
		// Mid-size jobs fill the lower-middle of the machine first and
		// enter the wide region only as a last resort.
		if p, ok := randIn(cands, env.RNG(), func(c bgp.Partition) bool { return c.End() <= wideRegionLo }); ok {
			return p, true
		}
		return cands[0], true
	}
}

// ReserveWindow picks the aligned window for a starving wide job,
// minimizing the longest remaining occupant runtime and preferring the
// wide region.
func (intrepidPolicy) ReserveWindow(env Env, size int) bgp.Partition {
	return reserveIntrepid(env, size)
}

// reserveIntrepid is the shared drain-window choice; the counterfactual
// policies inherit it so the drain mechanism itself stays fixed across
// the zoo and only placement skew varies.
func reserveIntrepid(env Env, size int) bgp.Partition {
	align := size
	if size == 48 || size == 80 {
		align = 16
	}
	best := bgp.Partition{Start: 0, Size: size}
	bestScore := time.Duration(-1)
	bestOv := -1
	for start := 0; start+size <= bgp.NumMidplanes; start += align {
		p := bgp.Partition{Start: start, Size: size}
		var worst time.Duration
		for mp := p.Start; mp < p.End(); mp++ {
			if rem := env.Remaining(mp); rem > worst {
				worst = rem
			}
		}
		ov := overlap(p, wideRegionLo, wideRegionHi)
		if bestScore < 0 || worst < bestScore || (worst == bestScore && ov > bestOv) {
			best, bestScore, bestOv = p, worst, ov
		}
	}
	return best
}

// BootDelay models reboot-before-execution: uniform in [0.5, 1.5] ×
// the configured mean.
func (intrepidPolicy) BootDelay(env Env) time.Duration {
	return bootUniform(env)
}

// bootUniform is the shared reboot draw — one RNG draw per started
// run, common to every registered policy so boot-time noise stays
// comparable across the zoo.
func bootUniform(env Env) time.Duration {
	return time.Duration((0.5 + env.RNG().Float64()) * float64(env.SchedConfig().BootDelay))
}

// ResubmitAffinity draws Cobalt's per-partition queue affinity: with
// probability SamePartitionProb the freed partition is held for the
// resubmission.
func (intrepidPolicy) ResubmitAffinity(env Env, prev bgp.Partition) bool {
	return env.RNG().Float64() < env.SchedConfig().SamePartitionProb
}
