package sched

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/faultgen"
)

func testEngine(t *testing.T) *engine {
	t.Helper()
	cat := errcat.Intrepid()
	model := faultgen.DefaultModel(cat)
	e := &engine{
		cfg:     DefaultConfig(1),
		model:   model,
		machine: bgp.NewMachine(),
		faulty:  make(map[int]*faultState),
		held:    make(map[int]hold),
		start:   time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC),
	}
	e.now = e.start
	e.end = e.start.Add(30 * 24 * time.Hour)
	e.envMult = []float64{2, 0.5, 1}
	return e
}

func TestOriginFirst(t *testing.T) {
	p := bgp.Partition{Start: 8, Size: 4}
	mps := originFirst(p, 10)
	if mps[0] != 10 {
		t.Errorf("origin not first: %v", mps)
	}
	if len(mps) != 4 {
		t.Errorf("wrong length: %v", mps)
	}
	seen := map[int]bool{}
	for _, mp := range mps {
		seen[mp] = true
	}
	for mp := 8; mp < 12; mp++ {
		if !seen[mp] {
			t.Errorf("midplane %d missing: %v", mp, mps)
		}
	}
	// Origin outside the partition leaves order untouched.
	mps = originFirst(p, 50)
	if mps[0] != 8 {
		t.Errorf("foreign origin reordered: %v", mps)
	}
}

func TestEnvAt(t *testing.T) {
	e := testEngine(t)
	if got := e.envAt(e.start.Add(time.Hour)); got != 2 {
		t.Errorf("day 0 multiplier = %v, want 2", got)
	}
	if got := e.envAt(e.start.Add(25 * time.Hour)); got != 0.5 {
		t.Errorf("day 1 multiplier = %v, want 0.5", got)
	}
	// Before the campaign or past the table: neutral.
	if got := e.envAt(e.start.Add(-time.Hour)); got != 1 {
		t.Errorf("pre-campaign multiplier = %v, want 1", got)
	}
	if got := e.envAt(e.start.Add(1000 * 24 * time.Hour)); got != 1 {
		t.Errorf("post-table multiplier = %v, want 1", got)
	}
}

func TestExposureDecay(t *testing.T) {
	e := testEngine(t)
	e.wearE[5] = 4
	e.wearT[5] = e.now
	if got := e.exposure(5, e.now); got != 4 {
		t.Errorf("exposure now = %v", got)
	}
	later := e.now.Add(e.model.WearTau)
	got := e.exposure(5, later)
	if got > 4/2.5 || got < 4/3 { // e^-1 ≈ 0.368
		t.Errorf("exposure after one tau = %v, want ~%v", got, 4*0.368)
	}
	if e.exposure(6, e.now) != 0 {
		t.Error("untouched midplane has exposure")
	}
}

func TestBlockedByHoldAndReservation(t *testing.T) {
	e := testEngine(t)
	p := bgp.Partition{Start: 0, Size: 2}
	wMine := &waiting{exec: 1}
	wOther := &waiting{exec: 2}

	// Hold for exec 1 blocks exec 2 but not exec 1.
	e.held[0] = hold{exec: 1, until: e.now.Add(time.Hour)}
	if e.blocked(p, wMine) {
		t.Error("own hold blocked the holder")
	}
	if !e.blocked(p, wOther) {
		t.Error("foreign hold did not block")
	}
	// Expired holds are cleared lazily.
	e.now = e.now.Add(2 * time.Hour)
	if e.blocked(p, wOther) {
		t.Error("expired hold still blocks")
	}
	if _, still := e.held[0]; still {
		t.Error("expired hold not deleted")
	}

	// Reservations block everyone but the reserver.
	e.reserver = wMine
	e.reserved[1] = true
	if !e.blocked(p, wOther) {
		t.Error("reservation did not block")
	}
	if e.blocked(p, wMine) {
		t.Error("reservation blocked the reserver")
	}
}

func TestReserveWindowPrefersShortRemaining(t *testing.T) {
	e := testEngine(t)
	// Occupy the wide-region window with a long job and an alternative
	// window with a short one; the reservation should pick the short.
	long := &run{runID: 1, part: bgp.Partition{Start: 32, Size: 32}, started: true,
		startT: e.now, runtime: 100 * time.Hour}
	short := &run{runID: 2, part: bgp.Partition{Start: 0, Size: 32}, started: true,
		startT: e.now, runtime: 30 * time.Minute}
	for mp := 32; mp < 64; mp++ {
		e.mpOwner[mp] = long
	}
	for mp := 0; mp < 32; mp++ {
		e.mpOwner[mp] = short
	}
	win := reserveIntrepid(e, 32)
	if win.Start != 0 {
		t.Errorf("reserveWindow picked start %d, want 0 (shortest remaining occupant)", win.Start)
	}
	// On an empty machine the wide region wins the tie.
	e2 := testEngine(t)
	win = reserveIntrepid(e2, 32)
	if win.Start != 32 {
		t.Errorf("empty-machine reservation start %d, want 32 (wide region)", win.Start)
	}
}

func TestPickVictimsDeterministicBound(t *testing.T) {
	e := testEngine(t)
	e.running = map[int64]*run{}
	for i := int64(1); i <= 5; i++ {
		e.running[i] = &run{runID: i, started: true}
	}
	e.rng = newTestRand(7)
	v := e.pickVictims(1)
	if len(v) < 1 || len(v) > e.cfg.SharedVictimMax {
		t.Fatalf("victims = %d, want 1..%d", len(v), e.cfg.SharedVictimMax)
	}
	for _, r := range v {
		if r.runID == 1 {
			t.Error("excluded run selected as victim")
		}
	}
}
