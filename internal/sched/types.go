// Package sched implements a Cobalt-like discrete-event scheduler
// simulation of the Intrepid Blue Gene/P: midplane-granularity
// partition allocation with the region policy the paper documents,
// reboot-before-execution, user resubmission after interruptions, and
// fault injection driven by the faultgen model. It produces the two
// logs the co-analysis consumes (RAS stream, job log) plus the
// generator-side ground truth used as an oracle in tests.
package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/joblog"
	"repro/internal/raslog"
)

// Config controls the scheduler's dynamic behaviour.
type Config struct {
	// Seed seeds the engine's rng (independent of the workload seed).
	Seed int64
	// BootDelay is the mean partition reboot time before execution
	// ("reboot before execution"); actual delays are uniform in
	// [0.5, 1.5] × BootDelay.
	BootDelay time.Duration
	// SamePartitionProb is the probability the scheduler tries the
	// executable's previous partition first for a resubmission. The
	// paper measured 57.44% of resubmitted jobs landing on the same
	// partition.
	SamePartitionProb float64
	// ResubmitProb is the probability a user resubmits after an
	// interruption.
	ResubmitProb float64
	// MaxChainResubmits caps consecutive automatic resubmissions.
	MaxChainResubmits int
	// SharedVictimProb is the probability a shared-file-system
	// application error also interrupts other running jobs (spatial
	// propagation, Obs. 8).
	SharedVictimProb float64
	// SharedVictimMax bounds the number of extra victims.
	SharedVictimMax int
	// Policy names the registered scheduling policy to run; empty means
	// DefaultPolicy (the paper's Intrepid behaviour).
	Policy string
	// Candidates, when non-nil, replays a pre-drawn fault-candidate
	// stream (see faultgen.Model.Candidates) instead of drawing
	// candidates live from the engine RNG. Matrix runs use this to face
	// every policy with the identical ground-truth fault stream; nil
	// keeps the byte-identical solo path.
	Candidates []faultgen.Candidate
}

// DefaultConfig returns the Intrepid-like scheduler configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		BootDelay:         5 * time.Minute,
		SamePartitionProb: 0.42,
		ResubmitProb:      0.92,
		MaxChainResubmits: 12,
		SharedVictimProb:  0.5,
		SharedVictimMax:   2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BootDelay < 0 {
		return fmt.Errorf("sched: negative boot delay")
	}
	if c.SamePartitionProb < 0 || c.SamePartitionProb > 1 {
		return fmt.Errorf("sched: SamePartitionProb %v outside [0,1]", c.SamePartitionProb)
	}
	if c.ResubmitProb < 0 || c.ResubmitProb > 1 {
		return fmt.Errorf("sched: ResubmitProb %v outside [0,1]", c.ResubmitProb)
	}
	if c.SharedVictimProb < 0 || c.SharedVictimProb > 1 {
		return fmt.Errorf("sched: SharedVictimProb %v outside [0,1]", c.SharedVictimProb)
	}
	if c.MaxChainResubmits < 0 || c.SharedVictimMax < 0 {
		return fmt.Errorf("sched: negative cap")
	}
	if c.Policy != "" {
		if _, ok := registry[c.Policy]; !ok {
			return fmt.Errorf("sched: unknown policy %q (registered: %v)", c.Policy, PolicyNames())
		}
	}
	return nil
}

// Outcome is the ground-truth fate of one job.
type Outcome struct {
	// Interrupted reports whether a fatal event killed the job.
	Interrupted bool
	// Code is the ERRCODE that killed the job (empty if completed).
	Code string
	// Class is the ground-truth origin of the killing code.
	Class errcat.Class
	// Exec is the executable path.
	Exec string
	// ResubmitOf is the job ID this submission retried after an
	// interruption (0 for planned submissions).
	ResubmitOf int64
	// ChainFails is how many consecutive interruptions preceded this
	// submission in its resubmission chain.
	ChainFails int
	// SamePartition reports whether a resubmission landed on the same
	// partition as the interrupted attempt.
	SamePartition bool
}

// GroundTruth is the oracle produced alongside the logs.
type GroundTruth struct {
	// Faults lists every ground-truth fatal occurrence in time order.
	Faults []faultgen.GroundFault
	// Outcomes maps job ID to its fate.
	Outcomes map[int64]Outcome
}

// InterruptedJobs returns the IDs of interrupted jobs, in ascending
// order — Outcomes is a map, and an unsorted collection would leak
// random map order to every consumer (maporder invariant).
func (g GroundTruth) InterruptedJobs() []int64 {
	var out []int64
	for id, o := range g.Outcomes {
		if o.Interrupted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IdleFaultFraction returns the fraction of interrupting-capable fatal
// occurrences that struck idle locations (Obs. 7's driver).
func (g GroundTruth) IdleFaultFraction() float64 {
	idle, total := 0, 0
	for _, f := range g.Faults {
		if !f.Code.Interrupting {
			continue
		}
		total++
		if f.Idle {
			idle++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(idle) / float64(total)
}

// Result bundles a simulated campaign.
type Result struct {
	// Jobs is the Cobalt job log (every job that ran to completion or
	// interruption).
	Jobs []joblog.Job
	// Records is the full RAS stream, time-ordered and renumbered.
	Records []raslog.Record
	// Truth is the generator-side oracle.
	Truth GroundTruth
	// Start and End delimit the campaign.
	Start, End time.Time
}
