package sched

import (
	"sort"
	"time"

	"repro/internal/bgp"
)

// The counterfactual policies the paper could never run on the real
// machine: alternatives to Intrepid's documented region skew, each fed
// the identical workload (and, in matrix mode, the identical pre-drawn
// fault-candidate stream) so per-policy differences in interruption
// outcomes are attributable to the allocation decisions alone. All of
// them draw randomness only from Env.RNG() and inherit the Intrepid
// drain-window and reboot draws, so the zoo varies exactly one axis:
// where jobs land.

func init() {
	RegisterPolicy("first-fit", func() Policy { return firstFitPolicy{} })
	RegisterPolicy("random", func() Policy { return randomPolicy{} })
	RegisterPolicy("failure-aware", func() Policy { return failureAwarePolicy{} })
	RegisterPolicy("sjf", func() Policy { return sjfPolicy{} })
}

// firstFitPolicy removes the region skew entirely: every job takes the
// lowest-numbered free window of its width. Small jobs are no longer
// confined to the outer midplanes, so per-midplane workload — and the
// wide-exposure wear behind Observation 5 — spreads differently.
type firstFitPolicy struct{}

func (firstFitPolicy) Name() string          { return "first-fit" }
func (firstFitPolicy) Order(Env, []*waiting) {}

func (firstFitPolicy) Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	// Machine.Candidates scans starts in ascending order; the first
	// candidate is the lowest-numbered fit. No RNG draws at all.
	return cands[0], true
}

func (firstFitPolicy) ReserveWindow(env Env, size int) bgp.Partition {
	return reserveIntrepid(env, size)
}
func (firstFitPolicy) BootDelay(env Env) time.Duration { return bootUniform(env) }
func (firstFitPolicy) ResubmitAffinity(env Env, prev bgp.Partition) bool {
	return env.RNG().Float64() < env.SchedConfig().SamePartitionProb
}

// randomPolicy places every job uniformly among the free windows of
// its width — the "no policy" baseline that decorrelates placement
// from both region and history.
type randomPolicy struct{}

func (randomPolicy) Name() string          { return "random" }
func (randomPolicy) Order(Env, []*waiting) {}

func (randomPolicy) Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	return cands[env.RNG().Intn(len(cands))], true
}

func (randomPolicy) ReserveWindow(env Env, size int) bgp.Partition {
	return reserveIntrepid(env, size)
}
func (randomPolicy) BootDelay(env Env) time.Duration { return bootUniform(env) }
func (randomPolicy) ResubmitAffinity(env Env, prev bgp.Partition) bool {
	return env.RNG().Float64() < env.SchedConfig().SamePartitionProb
}

// fatalAvoidWindow is how long failure-aware allocation treats a
// midplane as suspect after a FATAL occurrence there.
const fatalAvoidWindow = 24 * time.Hour

// failureAwarePolicy answers the paper's open counterfactual: what if
// the allocator used the RAS stream it already had? It keeps Intrepid's
// region preferences but (a) filters out candidate windows touching a
// midplane that is still faulty or saw a FATAL within fatalAvoidWindow,
// falling back to the unfiltered candidates when nothing safe is free,
// and (b) refuses same-partition resubmit affinity onto hardware with a
// recent FATAL — directly countering the 57.44% same-partition
// resubmissions that the paper links to repeated interruptions.
type failureAwarePolicy struct{}

func (failureAwarePolicy) Name() string          { return "failure-aware" }
func (failureAwarePolicy) Order(Env, []*waiting) {}

// suspect reports whether partition p touches a midplane that is still
// faulty or saw a FATAL within the avoidance window.
func suspect(env Env, p bgp.Partition) bool {
	for mp := p.Start; mp < p.End(); mp++ {
		if env.Faulty(mp) {
			return true
		}
		if at, ok := env.LastFatal(mp); ok && env.Now().Sub(at) < fatalAvoidWindow {
			return true
		}
	}
	return false
}

func (failureAwarePolicy) Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	safe := make([]bgp.Partition, 0, len(cands))
	for _, c := range cands {
		if !suspect(env, c) {
			safe = append(safe, c)
		}
	}
	if len(safe) == 0 {
		// Everything free is suspect: run anyway rather than starve —
		// the counterfactual changes placement preference, not capacity.
		safe = cands
	}
	return placeIntrepid(env, safe, size)
}

func (failureAwarePolicy) ReserveWindow(env Env, size int) bgp.Partition {
	return reserveIntrepid(env, size)
}
func (failureAwarePolicy) BootDelay(env Env) time.Duration { return bootUniform(env) }

func (failureAwarePolicy) ResubmitAffinity(env Env, prev bgp.Partition) bool {
	if suspect(env, prev) {
		// The interrupted partition just produced a FATAL (or is still
		// faulty): never steer the resubmission back onto it.
		return false
	}
	return env.RNG().Float64() < env.SchedConfig().SamePartitionProb
}

// sjfPolicy exercises the queue-ordering decision point: shortest
// requested runtime first (stable, so equal runtimes keep arrival
// order), with skew-free first-fit placement. Short jobs stop queueing
// behind long ones, which shifts both queue delay and which jobs are
// exposed to faults.
type sjfPolicy struct{}

func (sjfPolicy) Name() string { return "sjf" }

func (sjfPolicy) Order(env Env, queue []*waiting) {
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].runtime < queue[j].runtime })
}

func (sjfPolicy) Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	return cands[0], true
}

func (sjfPolicy) ReserveWindow(env Env, size int) bgp.Partition {
	return reserveIntrepid(env, size)
}
func (sjfPolicy) BootDelay(env Env) time.Duration { return bootUniform(env) }
func (sjfPolicy) ResubmitAffinity(env Env, prev bgp.Partition) bool {
	return env.RNG().Float64() < env.SchedConfig().SamePartitionProb
}
