package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/joblog"
	"repro/internal/workload"
)

// evKind enumerates the discrete-event types.
type evKind int

const (
	evSubmit evKind = iota
	evStart
	evEnd
	evKill
	evFaultCand
	evRepair
	evExpire // a partition hold lapsed; retry scheduling
)

// event is one heap entry. Payload fields are used per kind.
type event struct {
	at   time.Time
	seq  int64
	kind evKind

	// evSubmit
	exec       int
	runtime    time.Duration
	resubmitOf int64
	chainFails int
	prev       bgp.Partition
	hasPrev    bool
	tryPrev    bool

	// evStart / evEnd / evKill
	runID int64

	// evKill (realloc and bug kills)
	code     errcat.Code
	mp       int
	faultGen int64
	isBug    bool

	// evRepair
	repairGen int64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// run is one scheduled job instance.
type run struct {
	runID, jobID int64
	exec         int
	part         bgp.Partition
	queueT       time.Time
	startT       time.Time
	runtime      time.Duration
	resubmitOf   int64
	chainFails   int
	started      bool
	done         bool
	samePart     bool
}

// waiting is one queued submission.
type waiting struct {
	exec       int
	runtime    time.Duration
	queueT     time.Time
	resubmitOf int64
	chainFails int
	prev       bgp.Partition
	hasPrev    bool
	// tryPrev is the once-per-submission decision to prefer the
	// previous partition.
	tryPrev bool
}

// faultState tracks a sticky failure on a midplane.
type faultState struct {
	code     errcat.Code
	gen      int64
	repairAt time.Time
}

// hold reserves a just-freed partition's midplanes for the interrupted
// executable's expected resubmission, modelling Cobalt's per-partition
// queue affinity on Intrepid (the mechanism behind the paper's 57.44%
// same-partition resubmissions).
type hold struct {
	exec  int
	until time.Time
}

// engine is the discrete-event simulator: a policy-agnostic event loop
// that owns simulated time, the fault stream and the ground truth, and
// defers every scheduling decision to its Policy (see policy.go).
type engine struct {
	cfg    Config
	policy Policy
	model  *faultgen.Model
	emit   *faultgen.Emitter
	execs  []workload.ExecSpec
	rng    *rand.Rand

	now   time.Time
	start time.Time
	end   time.Time
	heap  eventHeap
	seq   int64

	// replay holds the pre-drawn fault-candidate stream of a
	// counterfactual (matrix) run; nil means candidates are drawn live
	// from rng, the byte-identical solo path.
	replay    []faultgen.Candidate
	replayIdx int

	machine *bgp.Machine
	mpOwner [bgp.NumMidplanes]*run
	faulty  map[int]*faultState
	genSeq  int64

	// lastFatal tracks, per midplane, when the most recent FATAL
	// record was emitted there — the RAS-derived signal the
	// failure-aware policy consults through Env.LastFatal.
	lastFatal    [bgp.NumMidplanes]time.Time
	lastFatalSet [bgp.NumMidplanes]bool

	queue    []*waiting
	running  map[int64]*run
	nextID   int64
	bugCount map[int]int
	held     map[int]hold

	// reservation state for draining ahead of wide jobs
	reserved    [bgp.NumMidplanes]bool
	reserver    *waiting
	reservePart bgp.Partition

	// wear tracks each midplane's decaying wide-exposure for the fault
	// model: wearE is the exposure in hours as of wearT.
	wearE [bgp.NumMidplanes]float64
	wearT [bgp.NumMidplanes]time.Time

	// envMult is the per-day environment hazard multiplier table.
	envMult []float64

	jobs  []joblog.Job
	truth GroundTruth
}

// Run simulates the campaign described by the workload generator under
// the scheduler configuration and fault model, returning both logs and
// the ground truth.
func Run(cfg Config, gen *workload.Generator, model *faultgen.Model, emitCfg faultgen.EmitterConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	policy, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	spec := gen.Spec()
	e := &engine{
		cfg:      cfg,
		policy:   policy,
		model:    model,
		emit:     faultgen.NewEmitter(emitCfg, cfg.Seed^0x5eed),
		execs:    gen.Executables(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		start:    spec.Start,
		end:      spec.Start.Add(time.Duration(spec.Days) * 24 * time.Hour),
		machine:  bgp.NewMachine(),
		faulty:   make(map[int]*faultState),
		running:  make(map[int64]*run),
		nextID:   1,
		bugCount: make(map[int]int),
		held:     make(map[int]hold),
		replay:   cfg.Candidates,
	}
	e.truth.Outcomes = make(map[int64]Outcome)
	e.envMult = model.EnvMultipliers(e.rng, spec.Days+30)

	for _, s := range gen.Submissions() {
		e.push(&event{at: s.At, kind: evSubmit, exec: s.Exec, runtime: s.Runtime})
	}
	if e.replay != nil {
		// Counterfactual mode: the fault-candidate stream was pre-drawn
		// once (see faultgen.Model.Candidates) and is replayed verbatim,
		// so every policy in a matrix faces the identical candidates.
		if len(e.replay) > 0 {
			e.push(&event{at: e.replay[0].At, kind: evFaultCand})
		}
	} else {
		e.push(&event{at: e.start.Add(e.model.DrawCandidateGap(e.rng)), kind: evFaultCand})
	}

	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(*event)
		e.now = ev.at
		e.dispatch(ev)
	}
	if len(e.running) > 0 || (len(e.queue) > 0 && e.reserver == nil) {
		return nil, fmt.Errorf("sched: simulation drained with %d running, %d queued", len(e.running), len(e.queue))
	}

	nFatalStorm := len(e.emit.Records())
	e.emit.EmitNoise(e.start, e.end, nFatalStorm)
	recs := faultgen.Renumber(e.emit.Records())

	return &Result{
		Jobs:    e.jobs,
		Records: recs,
		Truth:   e.truth,
		Start:   e.start,
		End:     e.end,
	}, nil
}

func (e *engine) push(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.heap, ev)
}

func (e *engine) dispatch(ev *event) {
	switch ev.kind {
	case evSubmit:
		e.onSubmit(ev)
	case evStart:
		e.onStart(ev)
	case evEnd:
		e.onEnd(ev)
	case evKill:
		e.onKill(ev)
	case evFaultCand:
		e.onFaultCandidate()
	case evRepair:
		e.onRepair(ev)
	case evExpire:
		e.trySchedule()
	}
}

func (e *engine) onSubmit(ev *event) {
	e.queue = append(e.queue, &waiting{
		exec: ev.exec, runtime: ev.runtime, queueT: e.now,
		resubmitOf: ev.resubmitOf, chainFails: ev.chainFails,
		prev: ev.prev, hasPrev: ev.hasPrev, tryPrev: ev.tryPrev,
	})
	e.trySchedule()
}

// --- Env: the read-only engine view handed to policies ---

// Now returns the current simulated time.
func (e *engine) Now() time.Time { return e.now }

// RNG returns the engine's seed-derived generator.
func (e *engine) RNG() *rand.Rand { return e.rng }

// SchedConfig returns the scheduler configuration.
func (e *engine) SchedConfig() Config { return e.cfg }

// ExecSize returns the width of executable exec.
func (e *engine) ExecSize(exec int) int { return e.execs[exec].Size }

// Faulty reports whether midplane mp has a sticky, unrepaired failure.
func (e *engine) Faulty(mp int) bool {
	_, ok := e.faulty[mp]
	return ok
}

// LastFatal returns when the most recent FATAL record was emitted on
// midplane mp.
func (e *engine) LastFatal(mp int) (time.Time, bool) {
	return e.lastFatal[mp], e.lastFatalSet[mp]
}

// Remaining returns how long midplane mp stays occupied by its current
// run: remaining runtime for started runs, runtime plus mean boot
// delay for booting ones, zero when idle.
func (e *engine) Remaining(mp int) time.Duration {
	r := e.mpOwner[mp]
	if r == nil {
		return 0
	}
	if !r.started {
		return r.runtime + e.cfg.BootDelay
	}
	rem := r.startT.Add(r.runtime).Sub(e.now)
	if rem < 0 {
		return 0
	}
	return rem
}

// noteFatal records a FATAL emission on the given midplanes for the
// Env.LastFatal signal; call it alongside every emit.EmitFault.
func (e *engine) noteFatal(mps []int) {
	for _, mp := range mps {
		e.lastFatal[mp] = e.now
		e.lastFatalSet[mp] = true
	}
}

// reserveAfter is how long a wide job waits before the scheduler starts
// draining a window for it.
const reserveAfter = 15 * time.Minute

func (e *engine) trySchedule() {
	// The policy decides the order this pass considers jobs in (FIFO
	// for the default).
	e.policy.Order(e, e.queue)

	// Maintain at most one drain reservation, for the oldest starving
	// wide job.
	if e.reserver == nil {
		for _, w := range e.queue {
			if e.execs[w.exec].Size >= 32 && e.now.Sub(w.queueT) > reserveAfter {
				e.reserver = w
				e.reservePart = e.policy.ReserveWindow(e, e.execs[w.exec].Size)
				for mp := e.reservePart.Start; mp < e.reservePart.End(); mp++ {
					e.reserved[mp] = true
				}
				break
			}
		}
	}

	// Single pass: startRun only ever shrinks capacity, so a job that
	// fails to place cannot newly fit later in the same pass. A per-size
	// memo prunes repeated policy scans for saturated widths; the
	// previous-partition and reservation paths are job-specific and
	// bypass the memo.
	failedSize := make(map[int]bool)
	kept := e.queue[:0]
	for _, w := range e.queue {
		part, ok := e.placeFor(w, failedSize)
		if ok {
			e.startRun(w, part)
		} else {
			kept = append(kept, w)
		}
	}
	e.queue = kept
}

// placeFor returns the partition w should run on, honouring drain
// reservations, partition holds, previous-partition affinity, and the
// region policy. failedSize memoizes widths whose policy scan already
// failed in this pass.
func (e *engine) placeFor(w *waiting, failedSize map[int]bool) (bgp.Partition, bool) {
	if w == e.reserver {
		if e.machine.Free(e.reservePart) && !e.blocked(e.reservePart, w) {
			return e.reservePart, true
		}
		return bgp.Partition{}, false
	}
	size := e.execs[w.exec].Size
	if w.tryPrev && w.prev.Size == size &&
		e.machine.Free(w.prev) && !e.blocked(w.prev, w) {
		return w.prev, true
	}
	if failedSize[size] {
		return bgp.Partition{}, false
	}
	var avail []bgp.Partition
	for _, c := range e.machine.Candidates(size) {
		if !e.blocked(c, w) {
			avail = append(avail, c)
		}
	}
	p, ok := e.policy.Place(e, avail, size)
	if !ok {
		failedSize[size] = true
	}
	return p, ok
}

// blocked reports whether partition p is off-limits for w because of a
// drain reservation or a foreign partition hold.
func (e *engine) blocked(p bgp.Partition, w *waiting) bool {
	for mp := p.Start; mp < p.End(); mp++ {
		if e.reserved[mp] && w != e.reserver {
			return true
		}
		if h, ok := e.held[mp]; ok {
			if h.until.Before(e.now) {
				delete(e.held, mp)
				continue
			}
			if h.exec != w.exec {
				return true
			}
		}
	}
	return false
}

func (e *engine) startRun(w *waiting, part bgp.Partition) {
	if err := e.machine.Allocate(part); err != nil {
		// Defensive: choosePartition only returns free partitions.
		panic("sched: allocation of chosen partition failed: " + err.Error())
	}
	if w == e.reserver {
		for mp := range e.reserved {
			e.reserved[mp] = false
		}
		e.reserver = nil
	}
	r := &run{
		runID: e.nextID, jobID: e.nextID, exec: w.exec, part: part,
		queueT: w.queueT, runtime: w.runtime,
		resubmitOf: w.resubmitOf, chainFails: w.chainFails,
		samePart: w.hasPrev && part == w.prev,
	}
	e.nextID++
	e.running[r.runID] = r
	for mp := part.Start; mp < part.End(); mp++ {
		e.mpOwner[mp] = r
		delete(e.held, mp) // the hold (if any) is consumed or overridden
	}
	e.push(&event{at: e.now.Add(e.policy.BootDelay(e)), kind: evStart, runID: r.runID})
}

func (e *engine) onStart(ev *event) {
	r := e.running[ev.runID]
	if r == nil || r.done {
		return
	}
	r.started = true
	r.startT = e.now
	naturalEnd := e.now.Add(r.runtime)
	e.push(&event{at: naturalEnd, kind: evEnd, runID: r.runID})

	// Earliest pending doom: a still-faulty midplane in the partition
	// (the scheduler reallocated failed nodes), or the executable's
	// latent bug.
	var killAt time.Time
	var kill *event
	for mp := r.part.Start; mp < r.part.End(); mp++ {
		fs := e.faulty[mp]
		if fs == nil {
			continue
		}
		at := e.now.Add(faultgen.ReallocKillDelay(e.rng))
		if kill == nil || at.Before(killAt) {
			killAt = at
			kill = &event{at: at, kind: evKill, runID: r.runID, code: fs.code, mp: mp, faultGen: fs.gen}
		}
	}
	ex := e.execs[r.exec]
	if ex.Bug.Buggy() && e.bugCount[r.exec] < ex.Bug.FailRuns {
		at := e.now.Add(ex.Bug.BugDelay(e.rng))
		if kill == nil || at.Before(killAt) {
			killAt = at
			code, ok := e.model.Catalog.Lookup(ex.Bug.Code)
			if !ok {
				panic("sched: bug code not in catalog: " + ex.Bug.Code)
			}
			kill = &event{at: at, kind: evKill, runID: r.runID, code: code, mp: r.part.Start, isBug: true}
		}
	}
	if kill != nil && killAt.Before(naturalEnd) {
		e.push(kill)
	}
}

func (e *engine) onEnd(ev *event) {
	r := e.running[ev.runID]
	if r == nil || r.done {
		return
	}
	e.finish(r, e.now, Outcome{
		Exec: e.execs[r.exec].Path, ResubmitOf: r.resubmitOf,
		ChainFails: r.chainFails, SamePartition: r.samePart,
	})
	e.trySchedule()
}

func (e *engine) onKill(ev *event) {
	r := e.running[ev.runID]
	if r == nil || r.done || !r.started {
		return
	}
	if !ev.isBug {
		// Realloc kill: only fires if the midplane is still faulty with
		// the same fault generation (the repair may have finished first).
		fs := e.faulty[ev.mp]
		if fs == nil || fs.gen != ev.faultGen {
			return
		}
	}
	redundant := false
	if ev.isBug {
		redundant = e.bugCount[r.exec] >= 1
		e.bugCount[r.exec]++
	} else {
		redundant = true // re-report of an existing sticky failure
	}
	gf := faultgen.GroundFault{
		Time: e.now, Code: ev.code, Midplane: ev.mp,
		InterruptedJobs: []int64{r.jobID}, Redundant: redundant,
	}
	mps := originFirst(r.part, ev.mp)
	e.emit.EmitFault(e.now, ev.code, mps)
	e.noteFatal(mps)
	e.killJob(r, e.now, ev.code)

	if !ev.isBug {
		e.adminAccelerate(ev.mp)
	}

	// Spatial propagation: shared file-system application errors can
	// interrupt other running jobs at the same time (Obs. 8).
	if ev.code.Shared && e.rng.Float64() < e.cfg.SharedVictimProb {
		victims := e.pickVictims(r.runID)
		for _, v := range victims {
			vmps := v.part.Midplanes()
			e.emit.EmitFault(e.now, ev.code, vmps)
			e.noteFatal(vmps)
			e.killJob(v, e.now, ev.code)
			gf.InterruptedJobs = append(gf.InterruptedJobs, v.jobID)
		}
	}
	e.truth.Faults = append(e.truth.Faults, gf)
	e.trySchedule()
}

// pickVictims selects up to SharedVictimMax other running, started jobs.
func (e *engine) pickVictims(excludeRunID int64) []*run {
	var pool []*run
	for _, r := range e.running {
		if r.runID != excludeRunID && r.started && !r.done {
			pool = append(pool, r)
		}
	}
	// Deterministic order before sampling: e.running is a map, so the
	// append order above is random per run (maporder invariant).
	sort.Slice(pool, func(i, j int) bool { return pool[i].runID < pool[j].runID })
	n := 1 + e.rng.Intn(e.cfg.SharedVictimMax)
	if n > len(pool) {
		n = len(pool)
	}
	e.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}

// killJob finishes a run as interrupted and schedules the user's
// resubmission.
func (e *engine) killJob(r *run, at time.Time, code errcat.Code) {
	e.finish(r, at, Outcome{
		Interrupted: true, Code: code.Name, Class: code.Class,
		Exec: e.execs[r.exec].Path, ResubmitOf: r.resubmitOf,
		ChainFails: r.chainFails, SamePartition: r.samePart,
	})
	if at.After(e.end) {
		return
	}
	if r.chainFails+1 > e.cfg.MaxChainResubmits {
		return
	}
	if e.rng.Float64() >= e.cfg.ResubmitProb {
		return
	}
	resubAt := at.Add(workload.ResubmitDelay(e.rng))
	// Partition affinity is decided once per interruption: the policy
	// chooses whether the freed partition is held for the resubmission
	// (Cobalt's per-partition queue affinity); otherwise the
	// resubmission goes wherever the policy sends it.
	affinity := e.policy.ResubmitAffinity(e, r.part)
	e.push(&event{
		at: resubAt, kind: evSubmit,
		exec: r.exec, runtime: r.runtime,
		resubmitOf: r.jobID, chainFails: r.chainFails + 1,
		prev: r.part, hasPrev: true, tryPrev: affinity,
	})
	if affinity {
		until := resubAt.Add(30 * time.Minute)
		for mp := r.part.Start; mp < r.part.End(); mp++ {
			e.held[mp] = hold{exec: r.exec, until: until}
		}
		e.push(&event{at: until.Add(time.Second), kind: evExpire})
	}
}

// adminAccelerate shortens the remaining repair of a sticky failure
// after it interrupts yet another job: repeated interruptions attract
// administrator attention.
func (e *engine) adminAccelerate(mp int) {
	fs := e.faulty[mp]
	if fs == nil {
		return
	}
	rem := fs.repairAt.Sub(e.now)
	if rem <= 0 {
		return
	}
	fs.repairAt = e.now.Add(time.Duration(float64(rem) * e.model.AdminAccel))
	e.push(&event{at: fs.repairAt, kind: evRepair, mp: mp, repairGen: fs.gen})
}

func (e *engine) finish(r *run, at time.Time, o Outcome) {
	r.done = true
	delete(e.running, r.runID)
	wide := r.part.Size >= e.model.WideSize
	for mp := r.part.Start; mp < r.part.End(); mp++ {
		if e.mpOwner[mp] == r {
			e.mpOwner[mp] = nil
		}
		if wide {
			hours := at.Sub(r.startT).Hours()
			if hours > 0 {
				e.wearE[mp] = e.exposure(mp, at) + hours
				e.wearT[mp] = at
			}
		}
	}
	e.machine.Release(r.part)
	ex := e.execs[r.exec]
	e.jobs = append(e.jobs, joblog.Job{
		ID: r.jobID, Name: "N.A.", ExecFile: ex.Path,
		QueueTime: r.queueT, StartTime: r.startT, EndTime: at,
		Partition: r.part, User: ex.User, Project: ex.Project,
	})
	e.truth.Outcomes[r.jobID] = o
}

func (e *engine) onFaultCandidate() {
	// A candidate carries (At, Midplane, U, Code, Repair). In the solo
	// path those are drawn live from the engine RNG in the historical
	// order (gap, midplane, uniform, then code/repair only if accepted)
	// — byte-identical to the pre-refactor engine. In replay mode the
	// next pre-drawn candidate is consumed instead, so every policy in
	// a matrix faces the identical fault-candidate stream regardless of
	// how many RNG draws its own decisions consume.
	var cand *faultgen.Candidate
	if e.replay != nil {
		cand = &e.replay[e.replayIdx]
		e.replayIdx++
		if e.replayIdx < len(e.replay) {
			e.push(&event{at: e.replay[e.replayIdx].At, kind: evFaultCand})
		}
	} else if e.now.Before(e.end) {
		e.push(&event{at: e.now.Add(e.model.DrawCandidateGap(e.rng)), kind: evFaultCand})
	}
	var mp int
	if cand != nil {
		mp = cand.Midplane
	} else {
		mp = e.rng.Intn(bgp.NumMidplanes)
	}
	owner := e.mpOwner[mp]
	hostsWide := owner != nil && owner.part.Size >= e.model.WideSize
	hazard := e.model.HazardAt(mp, hostsWide, e.exposure(mp, e.now)) * e.envAt(e.now)
	var u float64
	if cand != nil {
		u = cand.U
	} else {
		u = e.rng.Float64()
	}
	if u >= hazard/e.model.MaxHazard() {
		return
	}
	var code errcat.Code
	if cand != nil {
		code = cand.Code
	} else {
		code = e.model.DrawSystemCode(e.rng)
	}
	victim := owner
	victimRunning := victim != nil && victim.started && !victim.done

	if !code.Interrupting {
		// False-fatal alarm: FATAL record, jobs keep running.
		e.truth.Faults = append(e.truth.Faults, faultgen.GroundFault{
			Time: e.now, Code: code, Midplane: mp, Idle: !victimRunning,
		})
		e.emit.EmitFault(e.now, code, []int{mp})
		e.noteFatal([]int{mp})
		return
	}

	if code.Sticky {
		if _, already := e.faulty[mp]; !already {
			e.genSeq++
			var repair time.Duration
			if cand != nil {
				repair = cand.Repair
			} else {
				repair = e.model.DrawRepair(e.rng)
			}
			fs := &faultState{code: code, gen: e.genSeq, repairAt: e.now.Add(repair)}
			e.faulty[mp] = fs
			e.push(&event{at: fs.repairAt, kind: evRepair, mp: mp, repairGen: fs.gen})
		}
	}

	gf := faultgen.GroundFault{Time: e.now, Code: code, Midplane: mp, Idle: !victimRunning}
	if victimRunning {
		killAt := e.now.Add(faultgen.DetectionDelay(e.rng))
		gf.InterruptedJobs = []int64{victim.jobID}
		vmps := originFirst(victim.part, mp)
		e.emit.EmitFault(e.now, code, vmps)
		e.noteFatal(vmps)
		e.killJob(victim, killAt, code)
		e.trySchedule()
	} else {
		e.emit.EmitFault(e.now, code, []int{mp})
		e.noteFatal([]int{mp})
	}
	e.truth.Faults = append(e.truth.Faults, gf)
}

// originFirst returns the partition's midplanes with the fault origin
// mp moved to the front, so the emitter's storm throttling never drops
// the faulty location itself.
func originFirst(p bgp.Partition, mp int) []int {
	mps := p.Midplanes()
	for i, m := range mps {
		if m == mp {
			mps[0], mps[i] = mps[i], mps[0]
			break
		}
	}
	return mps
}

// envAt returns the environment hazard multiplier in effect at time t.
func (e *engine) envAt(t time.Time) float64 {
	d := t.Sub(e.start)
	if d < 0 {
		return 1
	}
	day := int(d.Hours() / 24)
	if day >= len(e.envMult) {
		return 1
	}
	return e.envMult[day]
}

// exposure returns midplane mp's wide-exposure hours decayed to time t.
func (e *engine) exposure(mp int, t time.Time) float64 {
	if e.wearE[mp] == 0 {
		return 0
	}
	dt := t.Sub(e.wearT[mp])
	if dt <= 0 {
		return e.wearE[mp]
	}
	return e.wearE[mp] * math.Exp(-dt.Hours()/e.model.WearTau.Hours())
}

func (e *engine) onRepair(ev *event) {
	fs := e.faulty[ev.mp]
	if fs == nil || fs.gen != ev.repairGen {
		return
	}
	if fs.repairAt.After(e.now) {
		return // superseded by an accelerated (or original) later event
	}
	delete(e.faulty, ev.mp)
}
