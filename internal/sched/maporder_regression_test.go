package sched

import (
	"bytes"
	"testing"

	"repro/internal/report"
)

// TestInterruptedJobsTableStable is the maporder regression test: a
// table built from GroundTruth.InterruptedJobs must render
// byte-identically on every call.
//
// Before InterruptedJobs sorted its result (the bgplint maporder fix),
// the IDs came out in Go's randomized map-iteration order — different
// on every call, even within one process — so a table built from them
// permuted its rows run to run and any golden comparison over such
// output flaked. With 32 interrupted jobs the chance of two
// consecutive calls agreeing by luck is 1/32!, so this test reliably
// failed before the fix and must stay stable after it.
func TestInterruptedJobsTableStable(t *testing.T) {
	g := GroundTruth{Outcomes: make(map[int64]Outcome)}
	for id := int64(1); id <= 64; id++ {
		g.Outcomes[id] = Outcome{Interrupted: id%2 == 0, Code: "KERN_PANIC"}
	}

	renderOnce := func() string {
		tb := report.NewTable("interrupted jobs", "JobID")
		for _, id := range g.InterruptedJobs() {
			tb.AddRow(id)
		}
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	first := renderOnce()
	for trial := 1; trial < 50; trial++ {
		if got := renderOnce(); got != first {
			t.Fatalf("table rows permuted between identical calls (map-order leak):\n--- call 0 ---\n%s\n--- call %d ---\n%s", first, trial, got)
		}
	}

	// And the order is the documented one: ascending IDs.
	ids := g.InterruptedJobs()
	if len(ids) != 32 {
		t.Fatalf("got %d interrupted jobs, want 32", len(ids))
	}
	for i, id := range ids {
		if want := int64(2 * (i + 1)); id != want {
			t.Fatalf("ids[%d] = %d, want %d (ascending order)", i, id, want)
		}
	}
}
