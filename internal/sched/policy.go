package sched

import (
	"math/rand"

	"repro/internal/bgp"
)

// Placement policy: Intrepid steered small jobs to the outer midplanes
// (65–80 in the paper's 1-indexed numbering, plus short jobs on
// midplanes 1–2) and reserved the middle of the machine for wide
// capability jobs. The result is the inconsistent per-midplane workload
// the paper documents in Figure 4: raw workload peaks where small jobs
// run, while wide-job workload — and with it the fatal-event count —
// concentrates on midplanes 33–64 (0-indexed 32–63).
const (
	wideRegionLo = 32
	wideRegionHi = 64
	smallRegion  = 64 // small jobs prefer [64, 80)
	shortRegion  = 4  // and the first two racks [0, 4)
)

// randIn picks uniformly among the candidates satisfying keep.
func randIn(cands []bgp.Partition, rng *rand.Rand, keep func(bgp.Partition) bool) (bgp.Partition, bool) {
	n := 0
	var pick bgp.Partition
	for _, c := range cands {
		if !keep(c) {
			continue
		}
		n++
		if rng.Intn(n) == 0 {
			pick = c
		}
	}
	return pick, n > 0
}

// overlap returns the midplane overlap of partition p with [lo, hi).
func overlap(p bgp.Partition, lo, hi int) int {
	a, b := p.Start, p.End()
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// pickByPolicy applies the region policy to the (already filtered) free
// candidates for a job of the given width.
func pickByPolicy(cands []bgp.Partition, rng *rand.Rand, size int) (bgp.Partition, bool) {
	if len(cands) == 0 {
		return bgp.Partition{}, false
	}
	switch {
	case size >= 32:
		// Maximize overlap with the wide region; ties to the highest
		// start so 48/64-wide blocks sit over [32, 64).
		best := cands[0]
		bestOv := -1
		for _, c := range cands {
			ov := overlap(c, wideRegionLo, wideRegionHi)
			if ov > bestOv || (ov == bestOv && c.Start > best.Start) {
				best, bestOv = c, ov
			}
		}
		return best, true
	case size <= 2:
		// Small jobs are confined to the outer small-job region and the
		// first two racks; when both are full they wait rather than
		// fragment the mid-machine (Cobalt's partition queues bind small
		// jobs to small named partitions). The pick within a region is
		// randomized — Cobalt walks its partition list in a
		// configuration order that is effectively arbitrary.
		if p, ok := randIn(cands, rng, func(c bgp.Partition) bool { return c.Start >= smallRegion }); ok {
			return p, true
		}
		if p, ok := randIn(cands, rng, func(c bgp.Partition) bool { return c.End() <= shortRegion }); ok {
			return p, true
		}
		return bgp.Partition{}, false
	default:
		// Mid-size jobs fill the lower-middle of the machine first and
		// enter the wide region only as a last resort.
		if p, ok := randIn(cands, rng, func(c bgp.Partition) bool { return c.End() <= wideRegionLo }); ok {
			return p, true
		}
		return cands[0], true
	}
}
