package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bgp"
)

// Policy abstracts every scheduling decision the engine makes. The
// engine owns the event loop, simulated time, the fault stream and the
// ground truth; a Policy only answers the questions Cobalt's allocator
// answered on Intrepid — in what order to consider queued jobs, where
// to place them, which window to drain for a starving wide job, how
// long reboot-before-execution takes, and whether an interrupted job's
// resubmission is bound to its previous partition.
//
// Determinism contract: a Policy must be a pure function of the Env it
// is handed. All randomness must come from Env.RNG() — the single
// seed-derived generator the engine threads through the whole run
// (constructing a private rand.New inside a Policy is a seedtaint lint
// error). A Place call that returns ok == false must not have consumed
// any RNG draws: the engine memoizes failed widths within one
// scheduling pass, so a draw on the failure path would make the memo
// visible in the random stream.
type Policy interface {
	// Name returns the registry key (also used in reports and flags).
	Name() string
	// Order arranges the waiting queue in the order this pass considers
	// jobs (it must permute the slice in place, never grow or shrink
	// it). The engine submits in arrival order; an identity Order is
	// FIFO.
	Order(env Env, queue []*waiting)
	// Place picks a partition among the free, unblocked candidates for
	// a job of the given width. Returning ok == false leaves the job
	// queued for the next pass.
	Place(env Env, cands []bgp.Partition, size int) (bgp.Partition, bool)
	// ReserveWindow picks the aligned window the engine drains for a
	// starving wide job of the given width.
	ReserveWindow(env Env, size int) bgp.Partition
	// BootDelay draws the reboot-before-execution delay for one run.
	BootDelay(env Env) time.Duration
	// ResubmitAffinity decides whether the resubmission of a job
	// interrupted on prev is held for that same partition (the
	// mechanism behind the paper's 57.44% same-partition rate).
	ResubmitAffinity(env Env, prev bgp.Partition) bool
}

// Env is the read-only view of engine state a Policy may consult. It
// is implemented by the engine; policies must treat it as immutable.
type Env interface {
	// Now is the current simulated time.
	Now() time.Time
	// RNG is the engine's seed-derived generator — the only sanctioned
	// randomness source for policies.
	RNG() *rand.Rand
	// SchedConfig returns the scheduler configuration.
	SchedConfig() Config
	// ExecSize returns the width (midplanes) of executable exec.
	ExecSize(exec int) int
	// Faulty reports whether midplane mp currently carries a sticky,
	// unrepaired failure.
	Faulty(mp int) bool
	// LastFatal returns the time of the most recent FATAL occurrence
	// recorded on midplane mp, and whether one has occurred at all.
	LastFatal(mp int) (time.Time, bool)
	// Remaining returns how long midplane mp stays occupied by its
	// current run (zero when idle): remaining runtime for started runs,
	// runtime plus mean boot delay for booting ones.
	Remaining(mp int) time.Duration
}

// DefaultPolicy is the registry key of the paper-documented Intrepid
// policy, the golden-checked default.
const DefaultPolicy = "intrepid"

// registry maps policy names to fresh-instance constructors. It is
// populated from init functions and only ever iterated through the
// sorted PolicyNames view (maporder invariant).
var registry = map[string]func() Policy{}

// RegisterPolicy adds a policy constructor under its name. It panics
// on duplicates — registration is an init-time, programmer-error
// surface.
func RegisterPolicy(name string, make func() Policy) {
	if name == "" {
		panic("sched: RegisterPolicy with empty name")
	}
	if _, dup := registry[name]; dup {
		panic("sched: duplicate policy " + name)
	}
	registry[name] = make
}

// PolicyNames returns the registered policy names in sorted order —
// the canonical iteration order for matrix runs, flags and reports
// (registry is a map; an unsorted view would leak random map order,
// the maporder invariant).
func PolicyNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPolicy constructs a fresh instance of the named policy; the empty
// name means DefaultPolicy.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	make, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (registered: %v)", name, PolicyNames())
	}
	return make(), nil
}

// randIn picks uniformly among the candidates satisfying keep. It
// consumes one RNG draw per kept candidate and none when nothing is
// kept, preserving the failed-Place contract.
func randIn(cands []bgp.Partition, rng *rand.Rand, keep func(bgp.Partition) bool) (bgp.Partition, bool) {
	n := 0
	var pick bgp.Partition
	for _, c := range cands {
		if !keep(c) {
			continue
		}
		n++
		if rng.Intn(n) == 0 {
			pick = c
		}
	}
	return pick, n > 0
}

// overlap returns the midplane overlap of partition p with [lo, hi).
func overlap(p bgp.Partition, lo, hi int) int {
	a, b := p.Start, p.End()
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}
