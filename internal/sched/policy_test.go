package sched

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/raslog"
	"repro/internal/workload"
)

// policyCampaign runs a short, fault-rich campaign under the named
// policy; cands != nil switches the engine into replay mode.
func policyCampaign(t *testing.T, seed int64, days int, policy string, cands []faultgen.Candidate) *Result {
	t.Helper()
	cat := errcat.Intrepid()
	spec := workload.DefaultSpec(seed, 1)
	spec.Days = days
	gen, err := workload.New(spec, cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	model := faultgen.DefaultModel(cat)
	model.BaseRate *= 6
	emitCfg := faultgen.DefaultEmitterConfig()
	emitCfg.NoisePerFatal = 2
	cfg := DefaultConfig(seed)
	cfg.Policy = policy
	cfg.Candidates = cands
	res, err := Run(cfg, gen, model, emitCfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testCandidates pre-draws a candidate stream matching policyCampaign's
// model and horizon.
func testCandidates(t *testing.T, seed int64, days int) []faultgen.Candidate {
	t.Helper()
	cat := errcat.Intrepid()
	model := faultgen.DefaultModel(cat)
	model.BaseRate *= 6
	start := workload.DefaultSpec(seed, 1).Start
	rng := rand.New(rand.NewSource(seed ^ 0xfa57))
	return model.Candidates(rng, start, start.Add(time.Duration(days)*24*time.Hour))
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 4 {
		t.Fatalf("expected >= 4 registered policies, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PolicyNames not sorted: %v", names)
		}
	}
	want := map[string]bool{DefaultPolicy: false, "first-fit": false, "random": false, "failure-aware": false, "sjf": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
		p, err := NewPolicy(n)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("policy %q reports name %q", n, p.Name())
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("policy %q not registered", n)
		}
	}
	if p, err := NewPolicy(""); err != nil || p.Name() != DefaultPolicy {
		t.Errorf("NewPolicy(\"\") = %v, %v; want default", p, err)
	}
	if _, err := NewPolicy("no-such-policy"); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg := DefaultConfig(1)
	cfg.Policy = "no-such-policy"
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted unknown policy")
	}
}

func TestRegisterPolicyPanics(t *testing.T) {
	for _, name := range []string{"", DefaultPolicy} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPolicy(%q) did not panic", name)
				}
			}()
			RegisterPolicy(name, func() Policy { return intrepidPolicy{} })
		}()
	}
}

// TestPolicyInvariants runs the core engine invariants — no
// double-booked midplanes, every interruption matched by a FATAL
// record on its partition, well-formed resubmission chains — under
// every registered policy.
func TestPolicyInvariants(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			res := policyCampaign(t, 11, 10, name, nil)
			if len(res.Jobs) == 0 || len(res.Records) == 0 {
				t.Fatal("empty campaign")
			}

			// No two jobs hold the same midplane at the same time.
			type iv struct {
				s, e time.Time
				id   int64
			}
			perMp := make([][]iv, bgp.NumMidplanes)
			for _, j := range res.Jobs {
				if !j.Partition.Valid() {
					t.Fatalf("job %d invalid partition %+v", j.ID, j.Partition)
				}
				for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
					perMp[mp] = append(perMp[mp], iv{j.StartTime, j.EndTime, j.ID})
				}
			}
			for mp, ivs := range perMp {
				for i := range ivs {
					for k := i + 1; k < len(ivs); k++ {
						a, b := ivs[i], ivs[k]
						if a.s.Before(b.e) && b.s.Before(a.e) {
							if over := minTime(a.e, b.e).Sub(maxTime(a.s, b.s)); over > time.Minute {
								t.Fatalf("midplane %d double-booked by jobs %d and %d for %v", mp, a.id, b.id, over)
							}
						}
					}
				}
			}

			// Interruptions have a matching FATAL record on the partition.
			store := raslog.NewStore(res.Records)
			fatal := store.Fatal()
			interrupted := 0
			byID := map[int64]int{}
			for i := range res.Jobs {
				byID[res.Jobs[i].ID] = i
			}
			for id, o := range res.Truth.Outcomes {
				if !o.Interrupted {
					continue
				}
				interrupted++
				j := res.Jobs[byID[id]]
				found := false
				for _, r := range fatal {
					if r.ErrCode != o.Code {
						continue
					}
					if dt := r.EventTime.Sub(j.EndTime); dt < -10*time.Minute || dt > 10*time.Minute {
						continue
					}
					for _, mp := range raslog.RecordMidplanes(r) {
						if j.Partition.Contains(mp) {
							found = true
							break
						}
					}
					if found {
						break
					}
				}
				if !found {
					t.Errorf("interrupted job %d (code %s) has no matching fatal record", id, o.Code)
				}
			}
			if interrupted == 0 {
				t.Fatal("campaign produced no interruptions")
			}

			// Resubmission chains are well-formed.
			resubs := 0
			for _, o := range res.Truth.Outcomes {
				if o.ResubmitOf == 0 {
					continue
				}
				resubs++
				prev, ok := res.Truth.Outcomes[o.ResubmitOf]
				if !ok || !prev.Interrupted || prev.Exec != o.Exec || o.ChainFails < 1 {
					t.Fatalf("malformed resubmission chain: %+v -> %+v", o, prev)
				}
			}
			if resubs == 0 {
				t.Fatal("no resubmissions observed")
			}
		})
	}
}

// TestPolicyDeterminism reruns each policy (live and replay mode) and
// requires byte-identical logs.
func TestPolicyDeterminism(t *testing.T) {
	cands := testCandidates(t, 12, 7)
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			for _, replay := range []bool{false, true} {
				var c []faultgen.Candidate
				if replay {
					c = cands
				}
				a := policyCampaign(t, 12, 7, name, c)
				b := policyCampaign(t, 12, 7, name, c)
				if len(a.Jobs) != len(b.Jobs) || len(a.Records) != len(b.Records) {
					t.Fatalf("replay=%v sizes differ: jobs %d/%d records %d/%d",
						replay, len(a.Jobs), len(b.Jobs), len(a.Records), len(b.Records))
				}
				for i := range a.Jobs {
					if a.Jobs[i] != b.Jobs[i] {
						t.Fatalf("replay=%v job %d differs", replay, i)
					}
				}
				for i := range a.Records {
					if a.Records[i] != b.Records[i] {
						t.Fatalf("replay=%v record %d differs", replay, i)
					}
				}
			}
		})
	}
}

// TestDefaultPolicyByteIdentical pins the refactor's core promise: an
// explicit -policy=intrepid run is byte-identical to the legacy
// implicit default.
func TestDefaultPolicyByteIdentical(t *testing.T) {
	implicit := policyCampaign(t, 13, 7, "", nil)
	explicit := policyCampaign(t, 13, 7, DefaultPolicy, nil)
	if len(implicit.Jobs) != len(explicit.Jobs) || len(implicit.Records) != len(explicit.Records) {
		t.Fatalf("sizes differ: jobs %d/%d records %d/%d",
			len(implicit.Jobs), len(explicit.Jobs), len(implicit.Records), len(explicit.Records))
	}
	for i := range implicit.Jobs {
		if implicit.Jobs[i] != explicit.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	for i := range implicit.Records {
		if implicit.Records[i] != explicit.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestPoliciesDivergeOnSharedStream feeds every policy the identical
// pre-drawn candidate stream and requires the counterfactuals to
// produce different interruption outcomes than the default — the
// whole point of the matrix.
func TestPoliciesDivergeOnSharedStream(t *testing.T) {
	cands := testCandidates(t, 14, 10)
	interruptions := map[string]int{}
	for _, name := range PolicyNames() {
		res := policyCampaign(t, 14, 10, name, cands)
		n := 0
		for _, o := range res.Truth.Outcomes {
			if o.Interrupted {
				n++
			}
		}
		interruptions[name] = n
		if n == 0 {
			t.Fatalf("policy %s saw no interruptions", name)
		}
	}
	distinct := map[int]bool{}
	for _, n := range interruptions {
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all policies produced identical interruption counts: %v", interruptions)
	}
}

// TestFailureAwareAvoidsSuspectPartitions checks the failure-aware
// hooks directly: suspect partitions are skipped when safe candidates
// exist, and resubmit affinity onto suspect hardware is refused
// without consuming an RNG draw.
func TestFailureAwareAvoidsSuspectPartitions(t *testing.T) {
	e := testEngine(t)
	e.rng = newTestRand(3)
	p, err := NewPolicy("failure-aware")
	if err != nil {
		t.Fatal(err)
	}
	// Midplane 70 is faulty; a small job must land in the outer region
	// but never on a window touching 70.
	e.faulty[70] = &faultState{}
	for i := 0; i < 50; i++ {
		part, ok := p.Place(e, e.machine.Candidates(1), 1)
		if !ok {
			t.Fatal("no placement")
		}
		if part.Contains(70) {
			t.Fatalf("failure-aware placed onto faulty midplane: %+v", part)
		}
	}
	// A recent FATAL (without a sticky fault) is avoided too.
	delete(e.faulty, 70)
	e.lastFatal[71] = e.now.Add(-time.Hour)
	e.lastFatalSet[71] = true
	for i := 0; i < 50; i++ {
		part, ok := p.Place(e, e.machine.Candidates(1), 1)
		if !ok {
			t.Fatal("no placement")
		}
		if part.Contains(71) {
			t.Fatalf("failure-aware placed onto recently-fatal midplane: %+v", part)
		}
	}
	// Old FATALs age out of the avoidance window.
	e.lastFatal[71] = e.now.Add(-fatalAvoidWindow - time.Hour)
	hit := false
	for i := 0; i < 200 && !hit; i++ {
		part, _ := p.Place(e, e.machine.Candidates(1), 1)
		hit = part.Contains(71)
	}
	if !hit {
		t.Error("aged-out FATAL still avoided")
	}

	// Suspect resubmit affinity is refused with zero draws.
	e2 := testEngine(t)
	e2.faulty[10] = &faultState{}
	e2.rng = newTestRand(42)
	ref := newTestRand(42)
	if p.ResubmitAffinity(e2, bgp.Partition{Start: 10, Size: 1}) {
		t.Error("affinity onto faulty partition")
	}
	if e2.rng.Int63() != ref.Int63() {
		t.Error("suspect ResubmitAffinity consumed RNG draws")
	}
}

// TestFailedPlaceConsumesNoDraws enforces the Place contract the
// engine's failedSize memo depends on: a failed placement must leave
// the RNG stream untouched.
func TestFailedPlaceConsumesNoDraws(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			e := testEngine(t)
			e.rng = newTestRand(5)
			p, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			ref := newTestRand(5)
			if _, ok := p.Place(e, nil, 8); ok {
				t.Fatal("placement from empty candidate list")
			}
			if e.rng.Int63() != ref.Int63() {
				t.Error("failed Place consumed RNG draws")
			}
		})
	}
}

func TestCandidateStreamShape(t *testing.T) {
	cat := errcat.Intrepid()
	model := faultgen.DefaultModel(cat)
	start := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	end := start.Add(14 * 24 * time.Hour)
	cands := model.Candidates(rand.New(rand.NewSource(9)), start, end)
	if len(cands) < 2 {
		t.Fatalf("degenerate stream: %d candidates", len(cands))
	}
	for i, c := range cands {
		if i > 0 && c.At.Before(cands[i-1].At) {
			t.Fatal("candidates not time-ordered")
		}
		if c.Midplane < 0 || c.Midplane >= bgp.NumMidplanes {
			t.Fatalf("midplane %d out of range", c.Midplane)
		}
		if c.U < 0 || c.U >= 1 {
			t.Fatalf("uniform %v out of range", c.U)
		}
		if c.Code.Name == "" {
			t.Fatal("candidate without code")
		}
		if i < len(cands)-1 && !c.At.Before(end) {
			t.Fatal("interior candidate at/past end")
		}
	}
	if last := cands[len(cands)-1]; last.At.Before(end) {
		t.Error("stream stopped before reaching end")
	}
	// Same seed, same stream.
	again := model.Candidates(rand.New(rand.NewSource(9)), start, end)
	if len(again) != len(cands) {
		t.Fatalf("redraw length %d vs %d", len(again), len(cands))
	}
	for i := range cands {
		if cands[i] != again[i] {
			t.Fatalf("candidate %d differs on redraw", i)
		}
	}
}
