package sched

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/raslog"
	"repro/internal/workload"
)

// smallCampaign runs a short, fault-rich campaign for invariant tests.
func smallCampaign(t *testing.T, seed int64, days int) *Result {
	t.Helper()
	cat := errcat.Intrepid()
	spec := workload.DefaultSpec(seed, 1)
	spec.Days = days
	gen, err := workload.New(spec, cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	model := faultgen.DefaultModel(cat)
	// Crank the base rate so a short campaign still sees plenty of faults.
	model.BaseRate *= 6
	emitCfg := faultgen.DefaultEmitterConfig()
	emitCfg.NoisePerFatal = 2
	res, err := Run(DefaultConfig(seed), gen, model, emitCfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesConsistentLogs(t *testing.T) {
	res := smallCampaign(t, 1, 14)
	if len(res.Jobs) == 0 {
		t.Fatal("no jobs")
	}
	if len(res.Records) == 0 {
		t.Fatal("no RAS records")
	}
	ids := map[int64]bool{}
	for _, j := range res.Jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
		if j.StartTime.Before(j.QueueTime) {
			t.Fatalf("job %d starts before queueing", j.ID)
		}
		if !j.EndTime.After(j.StartTime) {
			t.Fatalf("job %d ends at/before start", j.ID)
		}
		if !j.Partition.Valid() {
			t.Fatalf("job %d invalid partition %+v", j.ID, j.Partition)
		}
		if _, ok := res.Truth.Outcomes[j.ID]; !ok {
			t.Fatalf("job %d missing outcome", j.ID)
		}
	}
	// Every outcome corresponds to a logged job.
	if len(res.Truth.Outcomes) != len(res.Jobs) {
		t.Errorf("outcomes %d vs jobs %d", len(res.Truth.Outcomes), len(res.Jobs))
	}
	// RecIDs sequential, records time-ordered.
	for i, r := range res.Records {
		if r.RecID != int64(i+1) {
			t.Fatalf("record %d has RecID %d", i, r.RecID)
		}
		if i > 0 && r.EventTime.Before(res.Records[i-1].EventTime) {
			t.Fatal("records not time-ordered")
		}
	}
}

func TestNoOverlappingAllocations(t *testing.T) {
	res := smallCampaign(t, 2, 10)
	// Sweep: no two jobs may hold the same midplane at the same time.
	type iv struct {
		s, e time.Time
		id   int64
	}
	perMp := make([][]iv, bgp.NumMidplanes)
	for _, j := range res.Jobs {
		for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
			perMp[mp] = append(perMp[mp], iv{j.StartTime, j.EndTime, j.ID})
		}
	}
	for mp, ivs := range perMp {
		for i := range ivs {
			for k := i + 1; k < len(ivs); k++ {
				a, b := ivs[i], ivs[k]
				if a.s.Before(b.e) && b.s.Before(a.e) {
					// Inline system kills log EndTime a detection delay
					// after release; allow sub-minute overlap.
					over := minTime(a.e, b.e).Sub(maxTime(a.s, b.s))
					if over > time.Minute {
						t.Fatalf("midplane %d double-booked by jobs %d and %d for %v", mp, a.id, b.id, over)
					}
				}
			}
		}
	}
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func TestInterruptionsHaveFatalRecords(t *testing.T) {
	res := smallCampaign(t, 3, 14)
	store := raslog.NewStore(res.Records)
	fatal := store.Fatal()
	if len(fatal) == 0 {
		t.Fatal("no fatal records")
	}
	interrupted := 0
	for id, o := range res.Truth.Outcomes {
		if !o.Interrupted {
			continue
		}
		interrupted++
		// Find the job and check a fatal record with the outcome's code
		// exists near its end on its partition.
		var job *jobRef
		for i := range res.Jobs {
			if res.Jobs[i].ID == id {
				job = &jobRef{i}
				break
			}
		}
		if job == nil {
			t.Fatalf("interrupted job %d not in log", id)
		}
		j := res.Jobs[job.i]
		found := false
		for _, r := range fatal {
			if r.ErrCode != o.Code {
				continue
			}
			dt := r.EventTime.Sub(j.EndTime)
			if dt < -10*time.Minute || dt > 10*time.Minute {
				continue
			}
			for _, mp := range raslog.RecordMidplanes(r) {
				if j.Partition.Contains(mp) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("interrupted job %d (code %s) has no matching fatal record", id, o.Code)
		}
	}
	if interrupted == 0 {
		t.Fatal("campaign produced no interruptions; raise fault rate")
	}
}

type jobRef struct{ i int }

func TestGroundTruthFaultsOrdered(t *testing.T) {
	res := smallCampaign(t, 4, 10)
	if len(res.Truth.Faults) == 0 {
		t.Fatal("no ground-truth faults")
	}
	for i := 1; i < len(res.Truth.Faults); i++ {
		if res.Truth.Faults[i].Time.Before(res.Truth.Faults[i-1].Time) {
			t.Fatal("faults not time-ordered")
		}
	}
	idle, busy := 0, 0
	for _, f := range res.Truth.Faults {
		if !f.Code.Interrupting {
			continue
		}
		if f.Idle {
			idle++
			if len(f.InterruptedJobs) != 0 {
				t.Fatal("idle fault with interrupted jobs")
			}
		} else {
			busy++
		}
	}
	if idle == 0 || busy == 0 {
		t.Errorf("degenerate idle/busy fault split: %d/%d", idle, busy)
	}
}

func TestResubmissionChains(t *testing.T) {
	res := smallCampaign(t, 5, 14)
	resubs, same := 0, 0
	for _, o := range res.Truth.Outcomes {
		if o.ResubmitOf == 0 {
			continue
		}
		resubs++
		if o.SamePartition {
			same++
		}
		prev, ok := res.Truth.Outcomes[o.ResubmitOf]
		if !ok {
			t.Fatalf("resubmission references unknown job %d", o.ResubmitOf)
		}
		if !prev.Interrupted {
			t.Fatalf("resubmission of a non-interrupted job %d", o.ResubmitOf)
		}
		if prev.Exec != o.Exec {
			t.Fatal("resubmission changed executable")
		}
		if o.ChainFails < 1 {
			t.Fatal("resubmission with zero chain fails")
		}
	}
	if resubs == 0 {
		t.Fatal("no resubmissions observed")
	}
	frac := float64(same) / float64(resubs)
	// The paper measured 57.44% same-partition resubmissions.
	if frac < 0.30 || frac > 0.95 {
		t.Errorf("same-partition resubmission fraction = %v, want ~0.57", frac)
	}
}

func TestNonInterruptingCodesNeverKill(t *testing.T) {
	res := smallCampaign(t, 6, 14)
	for _, f := range res.Truth.Faults {
		if !f.Code.Interrupting && len(f.InterruptedJobs) > 0 {
			t.Fatalf("non-interrupting code %s killed jobs %v", f.Code.Name, f.InterruptedJobs)
		}
	}
	for _, o := range res.Truth.Outcomes {
		if o.Interrupted && (o.Code == errcat.CodeBulkPower || o.Code == errcat.CodeTorusSum) {
			t.Fatalf("job killed by non-interrupting code %s", o.Code)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := smallCampaign(t, 7, 7)
	b := smallCampaign(t, 7, 7)
	if len(a.Jobs) != len(b.Jobs) || len(a.Records) != len(b.Records) {
		t.Fatalf("sizes differ: jobs %d/%d records %d/%d",
			len(a.Jobs), len(b.Jobs), len(a.Records), len(b.Records))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SamePartitionProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad SamePartitionProb accepted")
	}
	bad = good
	bad.BootDelay = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative boot delay accepted")
	}
	bad = good
	bad.ResubmitProb = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("bad ResubmitProb accepted")
	}
	bad = good
	bad.MaxChainResubmits = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cap accepted")
	}
}

func TestPlaceIntrepid(t *testing.T) {
	m := bgp.NewMachine()
	env := testEngine(t)
	env.rng = newTestRand(1)
	// Wide job prefers the wide region.
	p, ok := placeIntrepid(env, m.Candidates(32), 32)
	if !ok || p.Start != 32 {
		t.Errorf("wide placement = %+v, want start 32", p)
	}
	// Small job prefers the outer region.
	p, ok = placeIntrepid(env, m.Candidates(1), 1)
	if !ok || p.Start < 64 {
		t.Errorf("small placement = %+v, want start >= 64", p)
	}
	// Mid-size job stays below the wide region.
	p, ok = placeIntrepid(env, m.Candidates(8), 8)
	if !ok || p.End() > 32 {
		t.Errorf("mid placement = %+v, want end <= 32", p)
	}
	// 64-wide jobs fully cover the wide region.
	p, ok = placeIntrepid(env, m.Candidates(64), 64)
	if !ok || overlap(p, wideRegionLo, wideRegionHi) != 32 {
		t.Errorf("64-wide placement = %+v", p)
	}
	// No candidates -> no placement.
	if _, ok := placeIntrepid(env, nil, 8); ok {
		t.Error("placement from empty candidate list")
	}
}

func TestWideJobsRunDuringCampaign(t *testing.T) {
	res := smallCampaign(t, 8, 14)
	// The drain reservation must let wide jobs run before campaign end,
	// not pile up at the tail.
	wideInCampaign := 0
	for _, j := range res.Jobs {
		if j.Partition.Size >= 32 && j.StartTime.Before(res.End) {
			wideInCampaign++
		}
	}
	if wideInCampaign == 0 {
		t.Error("no wide jobs started within the campaign window")
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
