package repro

import (
	"testing"
)

// TestObservationsHoldAcrossSeeds guards the headline directional
// claims against single-seed luck: every shape target of the paper must
// hold on three independent campaigns.
func TestObservationsHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign sweep")
	}
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig(seed)
			cfg.Days = 90
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := rep.Summary()

			// Obs. 1: a material fraction of fatal events never impact jobs.
			if s.NonImpactingEventFraction < 0.05 || s.NonImpactingEventFraction > 0.8 {
				t.Errorf("non-impacting fraction %.3f out of band", s.NonImpactingEventFraction)
			}
			// Obs. 2: system types dominate; app fraction is a minority share.
			if s.SystemTypes <= s.ApplicationTypes {
				t.Errorf("types %d/%d: system should dominate", s.SystemTypes, s.ApplicationTypes)
			}
			if s.ApplicationEventFraction <= 0 || s.ApplicationEventFraction > 0.5 {
				t.Errorf("app event fraction %.3f out of band", s.ApplicationEventFraction)
			}
			// Obs. 3: job-related redundancy exists and the scheduler
			// reuses failed partitions.
			if s.JobRedundantRemoved == 0 {
				t.Error("no job-related redundancy")
			}
			if s.SameLocationResubmits < 0.3 || s.SameLocationResubmits > 0.9 {
				t.Errorf("same-location resubmissions %.3f out of band", s.SameLocationResubmits)
			}
			// Obs. 4: decreasing hazard; filtering raises shape and MTBF.
			if s.WeibullShapeBefore >= 1 || s.WeibullShapeAfter >= 1 {
				t.Errorf("shapes %.3f/%.3f not both < 1", s.WeibullShapeBefore, s.WeibullShapeAfter)
			}
			if s.WeibullShapeAfter <= s.WeibullShapeBefore {
				t.Errorf("shape did not rise: %.3f -> %.3f", s.WeibullShapeBefore, s.WeibullShapeAfter)
			}
			if s.MTBFRatio <= 1 {
				t.Errorf("MTBF ratio %.3f <= 1", s.MTBFRatio)
			}
			// Obs. 5: failures follow wide-job workload, not raw workload.
			if s.CorrWideWorkload <= s.CorrWorkload {
				t.Errorf("corr wide %.2f <= corr raw %.2f", s.CorrWideWorkload, s.CorrWorkload)
			}
			if s.BandFatalShare < 0.4 {
				t.Errorf("band fatal share %.3f < 0.4", s.BandFatalShare)
			}
			// Obs. 6: interruptions are rare.
			if s.InterruptedJobFraction <= 0 || s.InterruptedJobFraction > 0.05 {
				t.Errorf("interrupted fraction %.4f out of band", s.InterruptedJobFraction)
			}
			// Obs. 7: MTTI above MTBF; system interruptions outnumber app.
			if s.MTTIOverMTBF <= 1 {
				t.Errorf("MTTI/MTBF %.3f <= 1", s.MTTIOverMTBF)
			}
			if s.SystemInterruptions <= s.AppInterruptions {
				t.Errorf("interruptions %d/%d: system should dominate",
					s.SystemInterruptions, s.AppInterruptions)
			}
			// Obs. 8: spatial propagation is the exception.
			if s.SpatialFraction > 0.3 {
				t.Errorf("spatial fraction %.3f too high", s.SpatialFraction)
			}
			// Obs. 9: resubmissions after interruptions are far riskier
			// than fresh submissions.
			if s.ResubRiskSystemK1 <= 3*s.InterruptedJobFraction {
				t.Errorf("k=1 resubmit risk %.3f not above base %.4f",
					s.ResubRiskSystemK1, s.InterruptedJobFraction)
			}
			// Obs. 11: application errors come early.
			if s.EarlyAppFraction < 0.5 {
				t.Errorf("early app fraction %.3f < 0.5", s.EarlyAppFraction)
			}
		})
	}
}
