package repro

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/simulate"
	"repro/internal/symtab"
	"repro/internal/workload"
)

// The benchmark fixture simulates one campaign and analyzes it once;
// every per-artifact benchmark then measures the cost of regenerating
// its table or figure from the analysis. Set REPRO_BENCH_DAYS to stretch
// the campaign (e.g. REPRO_BENCH_DAYS=237 for the paper-scale run).
var (
	benchOnce sync.Once
	benchRep  *Report
	benchErr  error
)

func benchReport(b *testing.B) *Report {
	b.Helper()
	benchOnce.Do(func() {
		days := 60
		if v := os.Getenv("REPRO_BENCH_DAYS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				days = n
			}
		}
		cfg := QuickConfig(1)
		cfg.Days = days
		benchRep, benchErr = Run(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRep
}

// BenchmarkCampaign measures the full simulate-and-analyze pipeline
// end to end (Table I's inputs).
func BenchmarkCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := QuickConfig(int64(i + 1))
		cfg.Days = 14
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Jobs().Len() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkTableI_LogSummary regenerates Table I.
func BenchmarkTableI_LogSummary(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.RenderTableI(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_RASRoundTrip measures the RAS record round trip
// behind Table II.
func BenchmarkTableII_RASRoundTrip(b *testing.B) {
	rep := benchReport(b)
	recs := rep.RAS().All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if _, err := raslog.UnmarshalLine(r.MarshalLine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII_JobRoundTrip measures the job record round trip
// behind Table III.
func BenchmarkTableIII_JobRoundTrip(b *testing.B) {
	rep := benchReport(b)
	jobs := rep.Jobs().All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		if _, err := joblog.UnmarshalLine(j.MarshalLine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_Pipeline measures the temporal-spatial-causality
// filtering cascade over the campaign's FATAL records.
func BenchmarkFigure1_Pipeline(b *testing.B) {
	rep := benchReport(b)
	fatal := rep.RAS().Fatal()
	cfg := filter.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs, _ := filter.Pipeline(cfg, symtab.NewTable(), fatal)
		if len(evs) == 0 {
			b.Fatal("pipeline produced no events")
		}
	}
}

// streamCorpus builds a synthetic raw RAS log in memory: FATAL events
// drowned in non-fatal noise, the mix the streaming ingestion sees.
// Synthetic (not the campaign fixture) so the codec benchmarks measure
// decode + cascade, not simulation startup.
func streamCorpus(records int) []byte {
	rng := rand.New(rand.NewSource(23))
	codes := []string{"_bgp_err_ddr_str", "_bgp_err_cns_ras_storm_fatal", "_bgp_warn_link", "_bgp_info_boot"}
	var buf []byte
	base := time.Date(2008, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < records; i++ {
		sev, comp := raslog.SevInfo, raslog.CompMMCS
		if i%8 == 0 {
			sev, comp = raslog.SevFatal, raslog.CompKernel
		}
		rec := raslog.Record{
			RecID:     int64(i + 1),
			MsgID:     "KERN_0802",
			Component: comp,
			ErrCode:   codes[i%len(codes)],
			Severity:  sev,
			EventTime: base.Add(time.Duration(i) * 400 * time.Millisecond),
			Flags:     "DefaultControlEventListener",
			Location:  "R" + strconv.Itoa(rng.Intn(40)) + "-M" + strconv.Itoa(i%2),
			Serial:    "SN",
			Message:   "benchmark record",
		}
		buf = rec.AppendLine(buf)
		buf = append(buf, '\n')
	}
	return buf
}

// BenchmarkStreamPipeline measures the streaming ingestion end to end:
// parallel sharded decode of a raw RAS log with in-shard FATAL
// filtering, then the full filter cascade — the bounded-memory path
// PipelineFromLog gives operators with real log files.
func BenchmarkStreamPipeline(b *testing.B) {
	corpus := streamCorpus(32768)
	cfg := filter.DefaultConfig()
	b.SetBytes(int64(len(corpus)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs, st, err := filter.PipelineFromLog(cfg, symtab.NewTable(), bytes.NewReader(corpus))
		if err != nil {
			b.Fatal(err)
		}
		if len(evs) == 0 || st.Input == 0 {
			b.Fatal("stream pipeline produced no events")
		}
	}
}

// BenchmarkObs1_Identification regenerates the three-case census.
func BenchmarkObs1_Identification(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := rep.Analysis().Census()
		if c.TypesInterruptionRelated == 0 {
			b.Fatal("no interruption-related types")
		}
	}
}

// BenchmarkObs2_Classification regenerates the class census.
func BenchmarkObs2_Classification(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := rep.Analysis().ClassificationCensus()
		if cc.SystemTypes == 0 {
			b.Fatal("no system types")
		}
	}
}

// BenchmarkCoanalysisGrouping measures the grouping-heavy co-analysis
// stages re-keyed on typed symbol IDs: per-executable interruption
// grouping (bitset over ExecID), per-job cause attribution (dense
// JobID-indexed state) and the per-code propagation set.
func BenchmarkCoanalysisGrouping(b *testing.B) {
	rep := benchReport(b)
	a := rep.Analysis()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.DistinctInterruptedJobs() == 0 {
			b.Fatal("no interrupted jobs")
		}
		if rs := a.Resubmissions(3); rs.MaxK == 0 {
			b.Fatal("no resubmission stats")
		}
		if ps := a.Propagation(); ps.InterruptingEvents == 0 {
			b.Fatal("no interrupting events")
		}
	}
}

// BenchmarkObs3_JobFilter regenerates the job-related filtering
// statistics.
func BenchmarkObs3_JobFilter(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := rep.Analysis().JobFilter()
		if st.Input == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkTableIV_WeibullFits regenerates Table IV (the MLE fits and
// LRT before/after job-related filtering; also Figure 3's curves).
func BenchmarkTableIV_WeibullFits(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc, err := rep.Analysis().FailureCharacteristics()
		if err != nil {
			b.Fatal(err)
		}
		if fc.Before.Weibull.Shape <= 0 {
			b.Fatal("bad fit")
		}
	}
}

// BenchmarkFigure4_Midplanes regenerates the three per-midplane series.
func BenchmarkFigure4_Midplanes(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := rep.Analysis().MidplaneCharacteristics(32)
		if mc.TopMidplanes[0] < 0 {
			b.Fatal("bad top midplane")
		}
	}
}

// BenchmarkFigure5_Bursts regenerates the daily interruption series and
// burst statistics.
func BenchmarkFigure5_Bursts(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := rep.Analysis().Bursts(0)
		if bs.TotalInterruptions == 0 {
			b.Fatal("no interruptions")
		}
	}
}

// BenchmarkTableV_InterruptionFits regenerates Table V and Figure 6.
func BenchmarkTableV_InterruptionFits(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir, err := rep.Analysis().InterruptionRates()
		if err != nil {
			b.Fatal(err)
		}
		if ir.System.N == 0 {
			b.Fatal("no system interruptions")
		}
	}
}

// BenchmarkObs8_Propagation regenerates the propagation statistics.
func BenchmarkObs8_Propagation(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := rep.Analysis().Propagation()
		if ps.InterruptingEvents == 0 {
			b.Fatal("no interrupting events")
		}
	}
}

// BenchmarkFigure7_Resubmission regenerates the conditional
// resubmission-risk curves.
func BenchmarkFigure7_Resubmission(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := rep.Analysis().Resubmissions(3)
		if rs.MaxK != 3 {
			b.Fatal("bad MaxK")
		}
	}
}

// BenchmarkTableVI_Vulnerability regenerates the size × runtime matrix.
func BenchmarkTableVI_Vulnerability(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vt := rep.Analysis().Vulnerability()
		if vt.Grand.Total == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkObs12_Suspicious regenerates the gain-ratio feature ranking
// and the suspicious-entity statistics.
func BenchmarkObs12_Suspicious(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := rep.Analysis().Features(12)
		if len(fr.System) != 5 {
			b.Fatal("bad ranking")
		}
	}
}

// BenchmarkAnalyze measures the co-analysis alone (matching through
// job-related filtering) over the campaign's logs.
func BenchmarkAnalyze(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.Analyze(core.DefaultConfig(), rep.RAS(), rep.Jobs())
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Events) == 0 {
			b.Fatal("no events")
		}
	}
}

// --- ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationThinning measures the fault-process thinning draw,
// the hot loop of the simulator's fault injection.
func BenchmarkAblationThinning(b *testing.B) {
	model := faultgen.DefaultModel(errcat.Intrepid())
	rng := newBenchRand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.DrawCandidateGap(rng)
		_ = model.DrawSystemCode(rng)
	}
}

// BenchmarkAblationWorkloadGen measures synthetic workload generation.
func BenchmarkAblationWorkloadGen(b *testing.B) {
	cat := errcat.Intrepid()
	app := cat.ByClass(errcat.ClassApplication)
	for i := 0; i < b.N; i++ {
		spec := workload.DefaultSpec(int64(i+1), 1)
		spec.Days = 14
		if _, err := workload.New(spec, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimulateOnly measures the discrete-event scheduler
// without analysis.
func BenchmarkAblationSimulateOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{Seed: int64(i + 1), Days: 14, NoisePerFatal: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMatchTolerance contrasts the matching stage under a
// tight and a loose tolerance (the precision/recall trade the design
// notes discuss).
func BenchmarkAblationMatchTolerance(b *testing.B) {
	rep := benchReport(b)
	for _, tol := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		b.Run(tol.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MatchTolerance = tol
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(cfg, rep.RAS(), rep.Jobs()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchedulerPolicy contrasts the engine with and
// without partition affinity (SamePartitionProb), the knob behind the
// paper's 57.44% same-location resubmissions.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	cat := errcat.Intrepid()
	spec := workload.DefaultSpec(1, 1)
	spec.Days = 14
	gen, err := workload.New(spec, cat.ByClass(errcat.ClassApplication))
	if err != nil {
		b.Fatal(err)
	}
	model := faultgen.DefaultModel(cat)
	emitCfg := faultgen.DefaultEmitterConfig()
	emitCfg.NoisePerFatal = 1
	for _, affinity := range []float64{0, 0.42} {
		name := "affinity-off"
		if affinity > 0 {
			name = "affinity-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(int64(i + 1))
				cfg.SamePartitionProb = affinity
				if _, err := sched.Run(cfg, gen, model, emitCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedRun measures a small scheduler campaign under every
// registered policy, so the gated baseline catches a slow counterfactual
// (or a regression in the engine's policy dispatch) per policy.
func BenchmarkSchedRun(b *testing.B) {
	cat := errcat.Intrepid()
	spec := workload.DefaultSpec(1, 1)
	spec.Days = 2
	spec.JobsPerDay = 60 // keep the per-op cost tractable for the gate
	gen, err := workload.New(spec, cat.ByClass(errcat.ClassApplication))
	if err != nil {
		b.Fatal(err)
	}
	model := faultgen.DefaultModel(cat)
	emitCfg := faultgen.DefaultEmitterConfig()
	emitCfg.NoisePerFatal = 1
	for _, policy := range sched.PolicyNames() {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(int64(i + 1))
				cfg.Policy = policy
				if _, err := sched.Run(cfg, gen, model, emitCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// --- parallel-engine benches ---

// benchAnalysis re-analyzes the benchmark campaign at a fixed
// parallelism so the fan-out benchmarks below can contrast worker
// counts on identical inputs. Cached per level.
var (
	benchAnalysesMu sync.Mutex
	benchAnalyses   = map[int]*core.Analysis{}
)

func benchAnalysis(b *testing.B, parallelism int) *core.Analysis {
	b.Helper()
	rep := benchReport(b)
	benchAnalysesMu.Lock()
	defer benchAnalysesMu.Unlock()
	if a, ok := benchAnalyses[parallelism]; ok {
		return a
	}
	cfg := core.DefaultConfig()
	cfg.Parallelism = parallelism
	a, err := core.Analyze(cfg, rep.RAS(), rep.Jobs())
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyses[parallelism] = a
	return a
}

// benchParallelisms are the worker counts the parallel benches sweep:
// sequential, two fixed fan-outs, and 0 = GOMAXPROCS.
var benchParallelisms = []int{1, 4, 8, 0}

func parName(p int) string {
	if p == 0 {
		return "p=gomaxprocs"
	}
	return "p=" + strconv.Itoa(p)
}

// BenchmarkFigure4_MidplanesParallel contrasts the per-midplane series
// computation across worker counts.
func BenchmarkFigure4_MidplanesParallel(b *testing.B) {
	for _, p := range benchParallelisms {
		a := benchAnalysis(b, p)
		b.Run(parName(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mc := a.MidplaneCharacteristics(32)
				if mc.TopMidplanes[0] < 0 {
					b.Fatal("bad top midplane")
				}
			}
		})
	}
}

// BenchmarkFigure4_MidplaneFitsParallel contrasts the 80-midplane
// Weibull fit census — the heaviest analysis fan-out — across worker
// counts.
func BenchmarkFigure4_MidplaneFitsParallel(b *testing.B) {
	for _, p := range benchParallelisms {
		a := benchAnalysis(b, p)
		b.Run(parName(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mf := a.MidplaneFits(5)
				if mf.Fitted == 0 {
					b.Fatal("no fitted midplanes")
				}
			}
		})
	}
}

// BenchmarkTableV_InterruptionFitsParallel contrasts the per-cause
// interruption fits across worker counts.
func BenchmarkTableV_InterruptionFitsParallel(b *testing.B) {
	for _, p := range benchParallelisms {
		a := benchAnalysis(b, p)
		b.Run(parName(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ir, err := a.InterruptionRates()
				if err != nil {
					b.Fatal(err)
				}
				if ir.System.N == 0 {
					b.Fatal("no system interruptions")
				}
			}
		})
	}
}

// BenchmarkEnsemble measures a multi-seed campaign (simulate + analyze
// + summarize per seed, then aggregate), sequential vs parallel.
func BenchmarkEnsemble(b *testing.B) {
	for _, p := range []int{1, 0} {
		b.Run(parName(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := QuickConfig(1)
				cfg.Days = 7
				cfg.Seeds = 4
				cfg.Parallelism = p
				ens, err := RunEnsemble(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(ens.PerSeed) != 4 {
					b.Fatal("short ensemble")
				}
			}
		})
	}
}

// --- extension benches ---

// BenchmarkExtensionPrediction evaluates the §VII failure-prediction
// study over the campaign's event stream.
func BenchmarkExtensionPrediction(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := rep.PredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no predictor results")
		}
	}
}

// BenchmarkExtensionCheckpoint runs the checkpoint-policy Monte Carlo
// under the fitted failure model.
func BenchmarkExtensionCheckpoint(b *testing.B) {
	rep := benchReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := rep.CheckpointStudy(24*time.Hour, 5*time.Minute, 50)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no checkpoint results")
		}
	}
}
