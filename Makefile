# Tier-1 gate: `make check` is what CI runs on every change — build,
# vet, tests, the race-detector pass that guards the parallel
# analysis engine (see internal/parallel and TestParallelMatchesSequential),
# and the bgplint determinism analyzers (see internal/lint and DESIGN.md
# "Determinism invariants").

GO ?= go

.PHONY: all build vet test race lint lint-baseline check smoke smoke-golden membound fuzz bench bench-baseline escape escape-baseline golden

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Every concurrency change must survive the race detector; the
# equivalence, sharding and serve hammer tests run under it here. The
# hammer tests only exercise real interleavings with enough parallelism,
# so force at least four Ps even on small CI runners.
RACE_PROCS = $(shell np=$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4); if [ "$$np" -lt 4 ]; then np=4; fi; echo $$np)
race:
	GOMAXPROCS=$(RACE_PROCS) $(GO) test -race ./...

# Determinism, domain, concurrency & hot-path analyzers (atomicpub,
# callgraph, commitseq, detrand, errcode, frozen, hotpath, idkind,
# latebind, lockguard, maporder, seedtaint, sharedfold), gated against
# the committed baseline: only NEW failing findings fail (exit 1;
# exit 2 = tool failure). Warn-tier findings (hotpath, latebind,
# idkind) print without failing; add -strict to gate them too.
# Also runnable through the vet driver, which additionally covers
# _test.go files: go vet -vettool=$(PWD)/bin/bgplint ./...
LINT_PKGS = ./... ./cmd/... ./examples/...
lint:
	$(GO) build -o bin/bgplint ./cmd/bgplint
	./bin/bgplint -baseline lint.baseline.json $(LINT_PKGS)

# Snapshot current findings into the committed baseline (the
# suppression workflow; see README "Linting"). Review the diff like
# code.
lint-baseline:
	$(GO) build -o bin/bgplint ./cmd/bgplint
	./bin/bgplint -write-baseline lint.baseline.json $(LINT_PKGS)

check: build vet lint test race smoke membound

# End-to-end daemon smoke: boot bgpd over a deterministic sample
# campaign, curl every endpoint family, and diff the answers against
# the goldens under testdata/serve/. `make smoke-golden` regenerates
# them after an intentional output change.
smoke:
	./scripts/smoke_bgpd.sh
	./scripts/smoke_policies.sh

smoke-golden:
	./scripts/smoke_bgpd.sh -update
	./scripts/smoke_policies.sh -update

# Bounded-memory equivalence gate: coanalyze a multi-campaign log under
# GOMEMLIMIT with a -mem-budget far below the event payload (forcing
# spill + zone-map-filtered reload) and diff the output against the
# unconstrained run. A ci.sh drift check keeps this script, this
# target, and the CI membound job pointing at the same gate.
membound:
	./scripts/membound.sh

# Short fuzz smoke of the line parsers, the location-code grammar, the
# symbol-table round trip, the ingest endpoints, and the seal/persist/
# restore durability boundary (the checked-in corpora and seed inputs
# always run as part of `test`; this explores further). The symtab
# target runs under -race: its fuzz body exercises frozen snapshots
# under concurrent readers.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/raslog -fuzz FuzzParseRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/joblog -fuzz FuzzParseJob -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bgp -fuzz FuzzParseLocation -fuzztime $(FUZZTIME)
	$(GO) test -race ./internal/symtab -fuzz FuzzSymtab -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -fuzz FuzzIngestBatch -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -fuzz FuzzSegmentSealRestore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -fuzz FuzzSegmentCodec -fuzztime $(FUZZTIME)

# The bgpbench-gated package set; a ci.sh drift check keeps this list
# aligned with cmd/bgpbench's benchPackages so `make bench` exercises
# exactly what CI gates.
BENCH_PKGS = ./internal/raslog ./internal/joblog ./internal/filter ./internal/serve ./internal/store .
bench:
	$(GO) test -bench . -benchmem -run '^$$' $(BENCH_PKGS)

# Regenerate the committed benchmark baseline the CI `bench` job gates
# against (fixed -benchtime/-count so reports stay diffable). Like
# lint-baseline, review the BENCH_PR10.json diff like code — a looser
# baseline is a perf regression being waved through.
bench-baseline:
	$(GO) run ./cmd/bgpbench run -count 5 -benchtime 2000x -out BENCH_PR10.json

# Compiler escape-analysis budget gate: rebuild the hot packages with
# -gcflags=-json and fail on new heap-escape sites, lost inlining, or
# any escape inside the per-event ingest codec roots (see cmd/bgpescape
# and DESIGN.md "Hot-path invariants").
escape:
	$(GO) build -o bin/bgpescape ./cmd/bgpescape
	./bin/bgpescape run -out escape-current.json
	./bin/bgpescape compare -baseline escape.baseline.json -current escape-current.json

# Regenerate the committed escape baseline after an intentional
# allocation change; review the escape.baseline.json diff like code.
escape-baseline:
	$(GO) run ./cmd/bgpescape run -out escape.baseline.json

# Regenerate the golden report after an intentional output change.
golden:
	$(GO) test ./cmd/bgpreport -run TestGoldenReport -update
