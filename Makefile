# Tier-1 gate: `make check` is what CI runs on every change — build,
# vet, tests, the race-detector pass that guards the parallel
# analysis engine (see internal/parallel and TestParallelMatchesSequential),
# and the bgplint determinism analyzers (see internal/lint and DESIGN.md
# "Determinism invariants").

GO ?= go

.PHONY: all build vet test race lint check fuzz bench golden

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Every concurrency change must survive the race detector; the
# equivalence and sharding tests run under it here.
race:
	$(GO) test -race ./...

# Determinism & parallel-safety analyzers (detrand, maporder, seedflow,
# sharedfold). Also runnable through the vet driver, which additionally
# covers _test.go files: go vet -vettool=$(PWD)/bin/bgplint ./...
lint:
	$(GO) build -o bin/bgplint ./cmd/bgplint
	./bin/bgplint ./...

check: build vet lint test race

# Short fuzz smoke of the two line parsers (the checked-in corpora and
# seed inputs always run as part of `test`; this explores further).
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/raslog -fuzz FuzzParseRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/joblog -fuzz FuzzParseJob -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the golden report after an intentional output change.
golden:
	$(GO) test ./cmd/bgpreport -run TestGoldenReport -update
