// Package repro reproduces "Co-analysis of RAS Log and Job Log on Blue
// Gene/P" (Zheng et al., IPDPS 2011) end to end: it simulates an
// Intrepid-like Blue Gene/P campaign (machine, Cobalt-like scheduler,
// fault injection, RAS/job log emission), runs the paper's co-analysis
// methodology over the two logs, and regenerates every table and figure
// of the evaluation.
//
// Typical use:
//
//	rep, err := repro.Run(repro.DefaultConfig(1))
//	...
//	rep.RenderAll(os.Stdout)
//
// The same analysis can be applied to external logs in this module's
// log formats via Load.
package repro

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/simulate"
)

// Config selects the campaign and analysis parameters.
type Config struct {
	// Seed drives every random draw; equal seeds give identical
	// campaigns and analyses.
	Seed int64
	// Days is the campaign length; the paper's study covers 237 days.
	Days int
	// NoisePerFatal is the non-fatal record volume per fatal record in
	// the raw RAS stream (Intrepid: ~62). Lower it for faster runs.
	NoisePerFatal float64
	// MatchTolerance is the job-end-to-event matching slack; zero means
	// the default (5 minutes).
	MatchTolerance time.Duration
	// Parallelism bounds the worker count of every fan-out — the filter
	// cascade shards, the per-midplane and per-cause fits, and ensemble
	// campaigns (0 = GOMAXPROCS, 1 = sequential). For a fixed seed the
	// report is byte-identical at every setting; see internal/parallel
	// for the determinism contract.
	Parallelism int
	// Seeds is the number of campaigns RunEnsemble simulates, at seeds
	// Seed, Seed+1, ..., Seed+Seeds-1 (0 or 1 means a single campaign).
	Seeds int
	// Policy names the scheduling policy the campaign simulates under
	// (see sched.PolicyNames); empty means the paper's Intrepid default,
	// whose output is pinned byte-identical by the goldens.
	Policy string
}

// DefaultConfig returns the full-scale, paper-equivalent configuration.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Days: 237, NoisePerFatal: 62}
}

// QuickConfig returns a reduced campaign (about a quarter of the paper's
// days, light noise) that runs in a couple of seconds; the shapes of
// all results are preserved.
func QuickConfig(seed int64) Config {
	return Config{Seed: seed, Days: 60, NoisePerFatal: 3}
}

// Report is a completed reproduction: the simulated campaign (when one
// was run), the analysis, and renderers for every artifact of the
// paper's evaluation.
type Report struct {
	analysis *core.Analysis
	// ras is nil for streaming reports (NewStreamReport); the renderers
	// needing raw-log aggregates read logStats() instead, and the one
	// needing the full store (RenderSensitivity) errors without it.
	ras  *raslog.Store
	jobs *joblog.Log
	// truth is non-nil only for simulated campaigns; external logs have
	// no oracle.
	truth *sched.GroundTruth
	days  int

	// rasStats is injected by NewStreamReport (statsSet true) or derived
	// lazily from ras under statsOnce.
	statsOnce sync.Once
	statsSet  bool
	rasStats  LogStats
}

// Run simulates a campaign and analyzes it.
func Run(cfg Config) (*Report, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("repro: non-positive Days %d", cfg.Days)
	}
	camp, err := simulate.Run(simConfig(cfg))
	if err != nil {
		return nil, err
	}
	rep, err := analyzeStores(cfg, camp.RAS, camp.Jobs)
	if err != nil {
		return nil, err
	}
	rep.truth = &camp.Result.Truth
	return rep, nil
}

// Load analyzes externally supplied logs in this module's line formats
// (see internal/raslog and internal/joblog for the schema; cmd/bgpgen
// writes compatible files). Both logs are decoded by the sharded
// streaming codec honoring cfg.Parallelism; the resulting analysis is
// byte-identical at every worker count.
func Load(cfg Config, rasLog, jobLog io.Reader) (*Report, error) {
	recs, err := raslog.ReadAllParallel(rasLog, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("repro: reading RAS log: %w", err)
	}
	jobs, err := joblog.ReadAllParallel(jobLog, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("repro: reading job log: %w", err)
	}
	return analyzeStores(cfg, raslog.NewStore(recs), joblog.NewLog(jobs))
}

func simConfig(cfg Config) simulate.Config {
	return simulate.Config{
		Seed:          cfg.Seed,
		Days:          cfg.Days,
		NoisePerFatal: cfg.NoisePerFatal,
		Policy:        cfg.Policy,
	}
}

func analyzeStores(cfg Config, ras *raslog.Store, jobs *joblog.Log) (*Report, error) {
	acfg := core.DefaultConfig()
	if cfg.MatchTolerance > 0 {
		acfg.MatchTolerance = cfg.MatchTolerance
	}
	acfg.Parallelism = cfg.Parallelism
	a, err := core.Analyze(acfg, ras, jobs)
	if err != nil {
		return nil, err
	}
	start, end := a.Span()
	return &Report{
		analysis: a,
		ras:      ras,
		jobs:     jobs,
		days:     int(end.Sub(start).Hours()/24) + 1,
	}, nil
}

// Analysis exposes the underlying co-analysis for advanced callers
// inside this module.
func (r *Report) Analysis() *core.Analysis { return r.analysis }

// RAS returns the RAS store under analysis.
func (r *Report) RAS() *raslog.Store { return r.ras }

// Jobs returns the job log under analysis.
func (r *Report) Jobs() *joblog.Log { return r.jobs }

// HasOracle reports whether generator ground truth is available (only
// for simulated campaigns).
func (r *Report) HasOracle() bool { return r.truth != nil }

// Oracle returns the ground truth of a simulated campaign, or nil.
func (r *Report) Oracle() *sched.GroundTruth { return r.truth }
