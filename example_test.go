package repro_test

import (
	"fmt"
	"os"

	"repro"
)

// Example_quickstart simulates a reduced campaign, runs the
// co-analysis, and prints one headline artifact. Use
// repro.DefaultConfig for the paper-scale 237-day reproduction.
func Example_quickstart() {
	rep, err := repro.Run(repro.QuickConfig(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	s := rep.Summary()
	if s.SameLocationResubmits > 0.3 && s.SameLocationResubmits < 0.9 {
		fmt.Println("scheduler reuses failed partitions for resubmissions (paper: 57.4%)")
	}
	if s.WeibullShapeBefore < 1 {
		fmt.Println("failure interarrivals show a decreasing hazard rate")
	}
	// Output:
	// scheduler reuses failed partitions for resubmissions (paper: 57.4%)
	// failure interarrivals show a decreasing hazard rate
}

// Example_load analyzes externally supplied logs in the module's line
// formats (as written by cmd/bgpgen).
func Example_load() {
	ras, err := os.Open("ras.log")
	if err != nil {
		fmt.Println("generate logs first: go run ./cmd/bgpgen")
		return
	}
	defer ras.Close()
	jobs, err := os.Open("job.log")
	if err != nil {
		fmt.Println("generate logs first: go run ./cmd/bgpgen")
		return
	}
	defer jobs.Close()
	rep, err := repro.Load(repro.DefaultConfig(0), ras, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	rep.RenderTableVI(os.Stdout)
	// Output:
	// generate logs first: go run ./cmd/bgpgen
}
