package repro

// Streaming-report support: a long-running ingester (internal/serve)
// never retains the raw RAS store — the noise bulk dominates it — so
// the few renderers that consume raw-log aggregates (Table I's sizes,
// Table II's example record, the Summary counters) read them from
// LogStats, which the ingester accumulates record by record and a
// batch Report derives lazily from its retained store. NewStreamReport
// assembles a Report from a streaming analysis plus those aggregates;
// everything else renders from the Analysis and the job log exactly as
// in the batch path, which is what makes the serve-vs-batch
// byte-equivalence tests possible.

import (
	"io"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/raslog"
)

// LogStats are the raw RAS-log aggregates the report needs once the
// store itself is gone. Table I counts re-marshaled line bytes (not
// raw input bytes), so accumulating from parsed records is exact.
type LogStats struct {
	// RASRecords counts all RAS records, noise included.
	RASRecords int
	// RASBytes is the re-marshaled log size in bytes, newlines included.
	RASBytes int
	// FatalRecords counts FATAL-severity records.
	FatalRecords int
	// FirstFatal is the first FATAL record in (EventTime, RecID) order —
	// Table II's example. HasFatal guards its validity.
	FirstFatal raslog.Record
	HasFatal   bool
}

// ObserveRAS folds one RAS record into the aggregates. Call in
// (EventTime, RecID) order so FirstFatal matches the batch store's
// sorted order.
func (ls *LogStats) ObserveRAS(rec *raslog.Record) {
	ls.RASRecords++
	ls.RASBytes += len(rec.MarshalLine()) + 1
	if rec.Fatal() {
		ls.FatalRecords++
		if !ls.HasFatal {
			ls.FirstFatal = *rec
			ls.HasFatal = true
		}
	}
}

// logStats returns the raw-log aggregates, deriving them from the
// retained store on first use for batch reports. Safe for concurrent
// renderers.
func (r *Report) logStats() *LogStats {
	r.statsOnce.Do(func() {
		if r.statsSet || r.ras == nil {
			return
		}
		recs := r.ras.All()
		for i := range recs {
			r.rasStats.ObserveRAS(&recs[i])
		}
		r.statsSet = true
	})
	return &r.rasStats
}

// NewStreamReport assembles a Report from a streaming analysis
// (core.AnalyzeStream) and pre-accumulated raw-log aggregates. The
// resulting report renders every artifact identically to a batch
// Report over the same records, except those needing the full raw RAS
// store (RenderSensitivity), which return an error instead.
func NewStreamReport(a *core.Analysis, jobs *joblog.Log, rasStats LogStats) *Report {
	start, end := a.Span()
	return &Report{
		analysis: a,
		jobs:     jobs,
		days:     int(end.Sub(start).Hours()/24) + 1,
		rasStats: rasStats,
		statsSet: true,
	}
}

// Artifacts returns the named report fragments of the paper's
// evaluation — the registry shared by cmd/coanalyze and the serving
// layer. The map is freshly allocated per call; callers may mutate
// their copy.
func Artifacts() map[string]func(*Report, io.Writer) error {
	return map[string]func(*Report, io.Writer) error{
		"t1":       (*Report).RenderTableI,
		"t2":       (*Report).RenderTableII,
		"t3":       (*Report).RenderTableIII,
		"pipeline": (*Report).RenderPipeline,
		"obs1":     (*Report).RenderIdentification,
		"obs2":     (*Report).RenderClassification,
		"obs3":     (*Report).RenderJobFilter,
		"f2":       (*Report).RenderFigure2,
		"f3":       (*Report).RenderFigure3,
		"t4":       (*Report).RenderTableIV,
		"f4":       (*Report).RenderFigure4,
		"f5":       (*Report).RenderFigure5,
		"f6":       (*Report).RenderFigure6,
		"t5":       (*Report).RenderTableV,
		"obs8":     (*Report).RenderPropagation,
		"f7":       (*Report).RenderFigure7,
		"t6":       (*Report).RenderTableVI,
		"features": (*Report).RenderFeatures,
		"predict":  (*Report).RenderPrediction,
		"ckpt":     (*Report).RenderCheckpointStudy,
		"types":    (*Report).RenderEventTypes,
		"models":   (*Report).RenderModelComparison,
		"sweep":    (*Report).RenderSensitivity,
		"mpfits":   (*Report).RenderMidplaneFits,
	}
}
