package repro

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/raslog"
	"repro/internal/report"
	"repro/internal/stats"
)

// RenderAll writes every table and figure of the paper's evaluation, in
// paper order. Artifacts that cannot be computed on the given data
// (e.g. too few application-error interruptions in a short campaign to
// fit their interarrival distribution) are skipped with a note instead
// of aborting the whole report; only write failures propagate.
func (r *Report) RenderAll(w io.Writer) error {
	steps := []struct {
		name   string
		render func(io.Writer) error
	}{
		{"Table I", r.RenderTableI},
		{"Table II", r.RenderTableII},
		{"Table III", r.RenderTableIII},
		{"pipeline", r.RenderPipeline},
		{"identification", r.RenderIdentification},
		{"classification", r.RenderClassification},
		{"job filter", r.RenderJobFilter},
		{"Figure 2", r.RenderFigure2},
		{"Figure 3", r.RenderFigure3},
		{"Table IV", r.RenderTableIV},
		{"midplane fits", r.RenderMidplaneFits},
		{"Figure 4", r.RenderFigure4},
		{"Figure 5", r.RenderFigure5},
		{"Figure 6", r.RenderFigure6},
		{"Table V", r.RenderTableV},
		{"propagation", r.RenderPropagation},
		{"Figure 7", r.RenderFigure7},
		{"Table VI", r.RenderTableVI},
		{"features", r.RenderFeatures},
		{"event types", r.RenderEventTypes},
		{"model comparison", r.RenderModelComparison},
		{"prediction study", r.RenderPrediction},
		{"checkpoint study", r.RenderCheckpointStudy},
	}
	for _, step := range steps {
		var buf bytes.Buffer
		if err := step.render(&buf); err != nil {
			if _, werr := fmt.Fprintf(w, "[%s skipped: %v]\n\n", step.name, err); werr != nil {
				return werr
			}
			continue
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderTableI writes the log-summary table (Table I).
func (r *Report) RenderTableI(w io.Writer) error {
	start, end := r.analysis.Span()
	ls := r.logStats()
	jobBytes := 0
	for _, j := range r.jobs.All() {
		jobBytes += len(j.MarshalLine()) + 1
	}
	t := report.NewTable("Table I: summary of the RAS log and job log",
		"Log", "Days", "Start", "End", "Size", "Records")
	t.AddRow("RAS", r.days, start.Format("2006-01-02"), end.Format("2006-01-02"),
		byteSize(ls.RASBytes), ls.RASRecords)
	t.AddRow("Job", r.days, start.Format("2006-01-02"), end.Format("2006-01-02"),
		byteSize(jobBytes), r.jobs.Len())
	return t.Render(w)
}

func byteSize(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// RenderTableII writes one example RAS record (Table II): the first
// FATAL record in (EventTime, RecID) order.
func (r *Report) RenderTableII(w io.Writer) error {
	ls := r.logStats()
	if !ls.HasFatal {
		return fmt.Errorf("repro: no FATAL records in the RAS log")
	}
	rec := ls.FirstFatal
	t := report.NewTable("Table II: example RAS event record", "Field", "Value")
	t.AddRow("RECID", rec.RecID)
	t.AddRow("MSG_ID", rec.MsgID)
	t.AddRow("COMPONENT", rec.Component.String())
	t.AddRow("SUBCOMPONENT", rec.SubComponent)
	t.AddRow("ERRCODE", rec.ErrCode)
	t.AddRow("SEVERITY", rec.Severity.String())
	t.AddRow("EVENT_TIME", raslog.FormatEventTime(rec.EventTime))
	t.AddRow("FLAGS", rec.Flags)
	t.AddRow("LOCATION", rec.Location)
	t.AddRow("SERIALNUMBER", rec.Serial)
	t.AddRow("MESSAGE", rec.Message)
	return t.Render(w)
}

// RenderTableIII writes one example job record (Table III).
func (r *Report) RenderTableIII(w io.Writer) error {
	jobs := r.jobs.All()
	if len(jobs) == 0 {
		return fmt.Errorf("repro: empty job log")
	}
	j := jobs[0]
	t := report.NewTable("Table III: example job record", "Field", "Value")
	t.AddRow("Job ID", j.ID)
	t.AddRow("Job Name", j.Name)
	t.AddRow("Execution File", j.ExecFile)
	t.AddRow("Queuing Time", fmt.Sprintf("%.2f", float64(j.QueueTime.UnixNano())/1e9))
	t.AddRow("Starting Time", fmt.Sprintf("%.2f", float64(j.StartTime.UnixNano())/1e9))
	t.AddRow("End Time", fmt.Sprintf("%.2f", float64(j.EndTime.UnixNano())/1e9))
	t.AddRow("Location", j.Partition.String())
	t.AddRow("User", j.User)
	t.AddRow("Project", j.Project)
	return t.Render(w)
}

// RenderPipeline writes the filtering-cascade statistics (Figure 1's
// numbers: 33,370 -> 549 -> 477 on Intrepid).
func (r *Report) RenderPipeline(w io.Writer) error {
	st := r.analysis.FilterStats
	jf := r.analysis.JobFilter()
	t := report.NewTable("Methodology pipeline (Figure 1)", "Stage", "Events", "Note")
	t.AddRow("raw FATAL records", st.Input, "")
	t.AddRow("after temporal filtering", st.AfterTemporal, "same location+code within 5 min")
	t.AddRow("after spatial filtering", st.AfterSpatial, "same code across locations")
	t.AddRow("after causality filtering", st.AfterCausality,
		fmt.Sprintf("compression %.2f%%", 100*st.CompressionRatio()))
	t.AddRow("after job-related filtering", len(r.analysis.Independent),
		fmt.Sprintf("removed %d (%.1f%%)", jf.Removed, 100*jf.CompressionRatio))
	return t.Render(w)
}

// RenderIdentification writes the Obs. 1 census.
func (r *Report) RenderIdentification(w io.Writer) error {
	c := r.analysis.Census()
	t := report.NewTable("Identification of interruption-related fatal events (Obs. 1)",
		"Category", "Types", "Note")
	t.AddRow("interruption-related", c.TypesInterruptionRelated, "cases 1+2 only")
	t.AddRow("nonfatal for applications", c.TypesNonFatal, "cases 2+3 only")
	t.AddRow("undetermined (pessimistic)", c.TypesUndetermined, "case 2 only, or conflict")
	t.AddRow("non-impacting events", "", fmt.Sprintf("%.2f%% of fatal events (paper: 20.84%%)",
		100*c.NonImpactingEventFraction))
	return t.Render(w)
}

// RenderClassification writes the Obs. 2 census.
func (r *Report) RenderClassification(w io.Writer) error {
	cc := r.analysis.ClassificationCensus()
	t := report.NewTable("System failures vs application errors (Obs. 2)", "Quantity", "Value", "Paper")
	t.AddRow("system-failure types", cc.SystemTypes, 72)
	t.AddRow("application-error types", cc.ApplicationTypes, 8)
	t.AddRow("application event fraction", fmt.Sprintf("%.2f%%", 100*cc.ApplicationEventFraction), "17.73%")
	t.AddRow("system interruptions", cc.SystemInterruptions, 206)
	t.AddRow("application interruptions", cc.ApplicationInterruptions, 102)
	return t.Render(w)
}

// RenderJobFilter writes the Obs. 3 statistics.
func (r *Report) RenderJobFilter(w io.Writer) error {
	jf := r.analysis.JobFilter()
	t := report.NewTable("Job-related filtering (Obs. 3)", "Quantity", "Value", "Paper")
	t.AddRow("input events", jf.Input, 549)
	t.AddRow("job-related redundant", jf.Removed, 72)
	t.AddRow("compression", fmt.Sprintf("%.1f%%", 100*jf.CompressionRatio), "13.1%")
	t.AddRow("same-location resubmissions", fmt.Sprintf("%.1f%%", 100*jf.SameLocationResubmitFraction), "57.4%")
	return t.Render(w)
}

// RenderFigure3 plots the interarrival ECDFs before and after
// job-related filtering (Figure 3).
func (r *Report) RenderFigure3(w io.Writer) error {
	fc, err := r.analysis.FailureCharacteristics()
	if err != nil {
		return err
	}
	xs, ys := fc.BeforeECDF.Points()
	lx, ly := report.LogXPoints(xs, ys)
	if err := report.LinePlot(w, "Figure 3a: ECDF of fatal-event interarrival, with job-related redundancy (x = log10 seconds)", lx, ly, 70, 14); err != nil {
		return err
	}
	xs, ys = fc.AfterECDF.Points()
	lx, ly = report.LogXPoints(xs, ys)
	return report.LinePlot(w, "Figure 3b: ECDF without job-related redundancy (x = log10 seconds)", lx, ly, 70, 14)
}

// RenderTableIV writes the Weibull comparison before/after job-related
// filtering (Table IV).
func (r *Report) RenderTableIV(w io.Writer) error {
	fc, err := r.analysis.FailureCharacteristics()
	if err != nil {
		return err
	}
	t := report.NewTable("Table IV: Weibull fits for fatal-event interarrival",
		"Sample", "Shape", "Scale", "Mean", "Variance", "LRT p", "KS(W)", "KS(E)")
	add := func(name string, f stats.InterarrivalFit) {
		t.AddRow(name, f.Weibull.Shape, f.Weibull.Scale, f.Weibull.Mean(),
			f.Weibull.Variance(), f.LRT.PValue, f.KSWeibull, f.KSExponential)
	}
	add("before job-related filtering", fc.Before)
	add("after job-related filtering", fc.After)
	t.AddRow("MTBF ratio (after/before)", fc.MTBFRatio, "", "", "", "", "", "")
	return t.Render(w)
}

// RenderFigure4 writes the three per-midplane series (Figure 4).
func (r *Report) RenderFigure4(w io.Writer) error {
	mc := r.analysis.MidplaneCharacteristics(32)
	labels := make([]string, bgp.NumMidplanes)
	fatal := make([]float64, bgp.NumMidplanes)
	for i := range labels {
		labels[i] = fmt.Sprintf("mp%02d", i)
		fatal[i] = float64(mc.FatalEvents[i])
	}
	if err := report.BarChart(w, "Figure 4a: independent fatal events per midplane", labels, fatal, 50); err != nil {
		return err
	}
	if err := report.BarChart(w, "Figure 4b: workload (busy seconds) per midplane", labels, mc.WorkloadSec[:], 50); err != nil {
		return err
	}
	if err := report.BarChart(w, "Figure 4c: wide-job workload (>= 32 midplanes) per midplane", labels, mc.WideWorkloadSec[:], 50); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "corr(fatal, workload) = %.3f; corr(fatal, wide workload) = %.3f (Obs. 5)\n",
		mc.CorrWorkload, mc.CorrWideWorkload)
	return err
}

// RenderFigure5 plots interruptions per day (Figure 5).
func (r *Report) RenderFigure5(w io.Writer) error {
	bs := r.analysis.Bursts(0)
	xs := make([]float64, len(bs.PerDay))
	ys := make([]float64, len(bs.PerDay))
	for i, n := range bs.PerDay {
		xs[i] = float64(i)
		ys[i] = float64(n)
	}
	if err := report.LinePlot(w, "Figure 5: interruptions per day", xs, ys, 70, 12); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"interrupted jobs: %.2f%% of jobs, %.2f%% of distinct jobs; Fano factor %.2f; max chain victims %d (Obs. 6)\n",
		100*bs.InterruptedJobFraction, 100*bs.DistinctJobFraction, bs.Fano, bs.MaxJobsPerEvent)
	return err
}

// RenderFigure6 plots interruption-interarrival ECDFs by cause
// (Figure 6).
func (r *Report) RenderFigure6(w io.Writer) error {
	ir, err := r.analysis.InterruptionRates()
	if err != nil {
		return err
	}
	xs, ys := ir.SystemECDF.Points()
	lx, ly := report.LogXPoints(xs, ys)
	if err := report.LinePlot(w, "Figure 6a: ECDF of interruption interarrival, system failures (x = log10 s)", lx, ly, 70, 12); err != nil {
		return err
	}
	xs, ys = ir.ApplicationECDF.Points()
	lx, ly = report.LogXPoints(xs, ys)
	return report.LinePlot(w, "Figure 6b: ECDF of interruption interarrival, application errors (x = log10 s)", lx, ly, 70, 12)
}

// RenderTableV writes the interruption Weibull fits (Table V).
func (r *Report) RenderTableV(w io.Writer) error {
	ir, err := r.analysis.InterruptionRates()
	if err != nil {
		return err
	}
	t := report.NewTable("Table V: Weibull fits for job-interruption interarrival",
		"Cause", "Shape", "Scale", "Mean", "Variance")
	t.AddRow("system failures", ir.System.Weibull.Shape, ir.System.Weibull.Scale,
		ir.System.Weibull.Mean(), ir.System.Weibull.Variance())
	t.AddRow("application errors", ir.Application.Weibull.Shape, ir.Application.Weibull.Scale,
		ir.Application.Weibull.Mean(), ir.Application.Weibull.Variance())
	t.AddRow("MTTI/MTBF", ir.MTTIOverMTBF, "", "", "(paper: 4.07; Obs. 7)")
	return t.Render(w)
}

// RenderPropagation writes the Obs. 8 statistics.
func (r *Report) RenderPropagation(w io.Writer) error {
	ps := r.analysis.Propagation()
	t := report.NewTable("Failure propagation (Obs. 8)", "Quantity", "Value", "Paper")
	t.AddRow("interrupting events", ps.InterruptingEvents, "")
	t.AddRow("spatially propagating", ps.SpatialEvents, "")
	t.AddRow("spatial fraction", fmt.Sprintf("%.2f%%", 100*ps.SpatialFraction), "7.22%")
	t.AddRow("propagating codes", fmt.Sprintf("%v", ps.SpatialCodes), "script error, CiodHungProxy")
	t.AddRow("temporal (job-redundant) events", ps.TemporalEvents, "")
	return t.Render(w)
}

// RenderFigure7 writes the resubmission-risk bars (Figure 7).
func (r *Report) RenderFigure7(w io.Writer) error {
	rs := r.analysis.Resubmissions(3)
	labels := make([]string, 0, 2*rs.MaxK)
	values := make([]float64, 0, 2*rs.MaxK)
	for k := 1; k <= rs.MaxK; k++ {
		labels = append(labels, fmt.Sprintf("category1 k=%d (n=%d)", k, rs.SystemN[k]))
		values = append(values, rs.System[k])
	}
	for k := 1; k <= rs.MaxK; k++ {
		labels = append(labels, fmt.Sprintf("category2 k=%d (n=%d)", k, rs.ApplicationN[k]))
		values = append(values, rs.Application[k])
	}
	if err := report.BarChart(w, "Figure 7: P(interruption | k consecutive prior interruptions)", labels, values, 40); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "interruptions without k>=2 history: %.1f%% (paper: 83.77%%; Obs. 9)\n",
		100*rs.UncoveredFraction)
	return err
}

// RenderTableVI writes the size × runtime vulnerability matrix
// (Table VI).
func (r *Report) RenderTableVI(w io.Writer) error {
	vt := r.analysis.Vulnerability()
	header := []string{"Size"}
	for j, lo := range vt.BinEdges {
		if j+1 < len(vt.BinEdges) {
			header = append(header, fmt.Sprintf("%.0f-%.0fs", lo, vt.BinEdges[j+1]))
		} else {
			header = append(header, fmt.Sprintf(">=%.0fs", lo))
		}
	}
	header = append(header, "sum:proportion")
	t := report.NewTable("Table VI: system-related interruptions / total jobs by size and execution time", header...)
	for i, size := range vt.Sizes {
		row := []interface{}{fmt.Sprintf("%d midplanes", size)}
		for j := range vt.BinEdges {
			c := vt.Cells[i][j]
			row = append(row, fmt.Sprintf("%d/%d", c.Interrupted, c.Total))
		}
		rt := vt.RowTotals[i]
		row = append(row, fmt.Sprintf("%d/%d=%.2f%%", rt.Interrupted, rt.Total, 100*rt.Proportion()))
		t.AddRow(row...)
	}
	row := []interface{}{"sum:proportion"}
	for j := range vt.BinEdges {
		c := vt.ColTotals[j]
		row = append(row, fmt.Sprintf("%d/%d=%.2f%%", c.Interrupted, c.Total, 100*c.Proportion()))
	}
	row = append(row, fmt.Sprintf("%d/%d=%.2f%%", vt.Grand.Interrupted, vt.Grand.Total, 100*vt.Grand.Proportion()))
	t.AddRow(row...)
	return t.Render(w)
}

// RenderFeatures writes the gain-ratio ranking and suspicious-entity
// statistics (Obs. 10-12).
func (r *Report) RenderFeatures(w io.Writer) error {
	fr := r.analysis.Features(12)
	t := report.NewTable("Feature ranking by information gain ratio (Obs. 10-12)",
		"Rank", "Category 1 (system)", "GainRatio", "Category 2 (application)", "GainRatio")
	for i := range fr.System {
		t.AddRow(i+1, fr.System[i].Name, fr.System[i].Score.Ratio,
			fr.Application[i].Name, fr.Application[i].Score.Ratio)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	early := r.analysis.EarlyInterruptionFraction(core.ClassApplication, 3600e9)
	_, err := fmt.Fprintf(w,
		"suspicious users: %d covering %.1f%% of interruptions; suspicious projects: %d covering %.1f%%\n"+
			"max per-user failed-job fraction: %.2f%% (Obs. 12)\n"+
			"application interruptions within 1 h: %.1f%% (paper: 74.5%%; Obs. 11)\n",
		len(fr.SuspiciousUsers), 100*fr.SuspiciousUserShare,
		len(fr.SuspiciousProjects), 100*fr.SuspiciousProjectShare,
		100*fr.MaxFailedJobFraction, 100*early)
	return err
}

// RenderFigure2 writes concrete instances of the paper's Figure 2: how
// an application error is identified by following an executable across
// locations while the abandoned location runs clean.
func (r *Report) RenderFigure2(w io.Writer) error {
	examples := r.analysis.RelocationExamples(3)
	if len(examples) == 0 {
		return fmt.Errorf("repro: no relocation examples in this campaign")
	}
	if _, err := fmt.Fprintln(w, "Figure 2: identifying application errors by relocation"); err != nil {
		return err
	}
	for i, ex := range examples {
		_, err := fmt.Fprintf(w,
			"  example %d: %s\n"+
				"    executable   %s\n"+
				"    interrupted  %s on %s\n"+
				"    resubmitted, interrupted again %s on %s\n"+
				"    meanwhile    job %d ran clean on %s (%s..%s)\n"+
				"    => the error follows the code, not the location: application error\n",
			i+1, ex.Code,
			ex.Exec,
			ex.First.Job.EndTime.Format("2006-01-02 15:04"), ex.First.Job.Partition,
			ex.Second.Job.EndTime.Format("2006-01-02 15:04"), ex.Second.Job.Partition,
			ex.CleanJob.ID, ex.CleanJob.Partition,
			ex.CleanJob.StartTime.Format("01-02 15:04"), ex.CleanJob.EndTime.Format("01-02 15:04"))
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderMidplaneFits writes the §V-B midplane-level fit census.
func (r *Report) RenderMidplaneFits(w io.Writer) error {
	c := r.analysis.MidplaneFits(5)
	t := report.NewTable("Midplane-level failure interarrival fits (§V-B)", "Quantity", "Value")
	t.AddRow("midplanes with >= 5 independent events", c.Fitted)
	t.AddRow("Weibull preferred by LRT", c.WeibullPreferred)
	t.AddRow("shape < 1 (decreasing hazard)", c.ShapeBelowOne)
	t.AddRow("mean fitted shape", c.MeanShape)
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"(the paper: \"Weibull distribution still fits midplane-level failure interarrival well\")")
	return err
}
